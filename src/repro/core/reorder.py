"""Inner-table reordering (Sec 4.1, Fig 2).

When the suffix of the pipeline starting at position ``i`` is depleted, the
controller asks :func:`decide_inner_order` whether the suffix should be
permuted. Two policies are provided:

* ``RANK_GREEDY`` — the paper's rule: compute each suffix leg's rank (Eq 3)
  from monitored values; if the ranks are not ascending (Eq 4), rebuild the
  suffix greedily by ascending rank, respecting join-graph connectivity.
* ``EXHAUSTIVE`` — enumerate all connected suffix permutations and pick the
  cheapest under the Eq (1) model (the composite-rank-exact alternative the
  paper's footnote 2 alludes to for cyclic graphs); used as an ablation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.config import InnerReorderPolicy
from repro.optimizer.cost import (
    best_order_exhaustive,
    cost_of_order,
    greedy_rank_suffix,
    rank,
)
from repro.optimizer.params import ModelProvider

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.executor.pipeline import PipelineExecutor

# Relative slack below which a rank inversion / cost difference is ignored,
# so measurement jitter does not cause churn.
_RANK_SLACK = 1e-9
_EXHAUSTIVE_MIN_GAIN = 0.01


def suffix_ranks(
    order: list[str], position: int, provider: ModelProvider
) -> list[float]:
    """Ranks of the legs at positions >= *position*, at their positions."""
    bound = frozenset(order[:position])
    ranks: list[float] = []
    for alias in order[position:]:
        jc, pc = provider.inner_params(alias, bound)
        ranks.append(rank(jc, pc))
        bound = bound | {alias}
    return ranks


def decide_inner_order(
    pipeline: "PipelineExecutor",
    provider: ModelProvider,
    position: int,
    policy: InnerReorderPolicy,
) -> list[str] | None:
    """New suffix for positions >= *position*, or None to keep the order."""
    order = pipeline.order
    suffix = order[position:]
    if len(suffix) < 2:
        return None
    graph = pipeline.join_graph
    if policy is InnerReorderPolicy.RANK_GREEDY:
        ranks = suffix_ranks(order, position, provider)
        ascending = all(
            ranks[i] <= ranks[i + 1] + _RANK_SLACK for i in range(len(ranks) - 1)
        )
        if ascending:
            return None
        new_order = greedy_rank_suffix(order[:position], suffix, graph, provider)
        new_suffix = list(new_order[position:])
        if new_suffix == suffix:
            return None
        return new_suffix
    # EXHAUSTIVE policy.
    current_cost = cost_of_order(order, provider)
    best, best_cost = best_order_exhaustive(
        order, graph, provider, fixed_prefix=order[:position]
    )
    new_suffix = list(best[position:])
    if new_suffix == suffix:
        return None
    if best_cost >= current_cost * (1.0 - _EXHAUSTIVE_MIN_GAIN):
        return None
    return new_suffix
