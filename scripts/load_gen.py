#!/usr/bin/env python3
"""Load generator for the query server: N clients, mixed DMV templates.

Opens ``--clients`` concurrent NDJSON connections against a live server
(start one with ``python -m repro serve``) and fires the four-table DMV
workload templates at it for ``--duration`` seconds, then prints a
throughput/latency report and judges the run:

* **zero protocol errors** — every response line parses, every response
  carries a known status and echoes a request id we sent;
* **no lost responses** — every request is answered (ok or a typed
  error) before the connection closes;
* **bounded rejection rate** — explicit load-shedding
  (``REJECTED_OVERLOAD`` / ``RATE_LIMITED``) may not exceed
  ``--max-reject-rate`` of all requests (the server is allowed to shed,
  not to melt);
* at least one successful query per client.

Exit code 0 when all hold, 1 with a loud report otherwise. Stdlib-only
client (the DMV SQL text is inlined via repro.dmv.templates, which needs
``PYTHONPATH=src``).

Usage::

    PYTHONPATH=src python -m repro serve --scale 0.01 --port 7654 &
    PYTHONPATH=src python scripts/load_gen.py --port 7654 --clients 8 \
        --duration 20s
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time

from repro.dmv.templates import four_table_workload

OK_CODES = {"REJECTED_OVERLOAD", "RATE_LIMITED"}  # load signals, not failures


def parse_duration(text: str) -> float:
    text = text.strip().lower()
    if text.endswith("s"):
        text = text[:-1]
    value = float(text)
    if value <= 0:
        raise ValueError("duration must be positive")
    return value


class ClientStats:
    def __init__(self) -> None:
        self.sent = 0
        self.ok = 0
        self.rejected = 0
        self.errors = 0          # typed errors that are real failures
        self.protocol_errors = 0
        self.latencies_ms: list[float] = []


async def run_client(
    index: int,
    host: str,
    port: int,
    queries: list[str],
    deadline: float,
    stats: ClientStats,
    pipeline: int,
    workers: int = 1,
) -> None:
    reader, writer = await asyncio.open_connection(host, port)
    in_flight: dict[int, float] = {}
    next_id = index * 1_000_000
    cursor = index  # stagger template order across clients
    try:
        while time.perf_counter() < deadline or in_flight:
            expired = time.perf_counter() >= deadline
            while not expired and len(in_flight) < pipeline:
                sql = queries[cursor % len(queries)]
                cursor += 1
                next_id += 1
                request = {"op": "query", "id": next_id, "sql": sql}
                if workers > 1:
                    request["workers"] = workers
                writer.write((json.dumps(request) + "\n").encode())
                in_flight[next_id] = time.perf_counter()
                stats.sent += 1
            await writer.drain()
            if not in_flight:
                continue
            line = await reader.readline()
            if not line:
                stats.protocol_errors += len(in_flight)
                return
            try:
                response = json.loads(line)
            except json.JSONDecodeError:
                stats.protocol_errors += 1
                continue
            started = in_flight.pop(response.get("id"), None)
            if started is None:
                stats.protocol_errors += 1
                continue
            stats.latencies_ms.append((time.perf_counter() - started) * 1e3)
            status = response.get("status")
            if status == "ok":
                stats.ok += 1
            elif status == "error":
                if response.get("code") in OK_CODES:
                    stats.rejected += 1
                else:
                    stats.errors += 1
                    print(
                        f"client {index}: error response "
                        f"{response.get('code')}: {response.get('error')}",
                        file=sys.stderr,
                    )
            else:
                stats.protocol_errors += 1
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


def percentile(values: list[float], q: float) -> float:
    if not values:
        return float("nan")
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


async def main_async(args: argparse.Namespace) -> int:
    queries = [item.sql for item in four_table_workload(
        queries_per_template=args.queries_per_template
    )]
    duration = parse_duration(args.duration)
    per_client = [ClientStats() for _ in range(args.clients)]
    deadline = time.perf_counter() + duration
    started = time.perf_counter()
    await asyncio.gather(*(
        run_client(
            i, args.host, args.port, queries, deadline, per_client[i],
            args.pipeline, args.workers,
        )
        for i in range(args.clients)
    ))
    elapsed = time.perf_counter() - started

    sent = sum(s.sent for s in per_client)
    ok = sum(s.ok for s in per_client)
    rejected = sum(s.rejected for s in per_client)
    errors = sum(s.errors for s in per_client)
    protocol_errors = sum(s.protocol_errors for s in per_client)
    latencies = [ms for s in per_client for ms in s.latencies_ms]
    answered = ok + rejected + errors

    print(f"clients:          {args.clients} (pipeline {args.pipeline})")
    print(f"duration:         {elapsed:.1f}s")
    print(f"requests sent:    {sent}")
    print(f"ok:               {ok} ({ok / max(elapsed, 1e-9):.1f} qps)")
    print(f"rejected (shed):  {rejected}")
    print(f"error responses:  {errors}")
    print(f"protocol errors:  {protocol_errors}")
    if latencies:
        print(
            f"latency ms:       p50 {percentile(latencies, 0.50):.1f}  "
            f"p95 {percentile(latencies, 0.95):.1f}  "
            f"p99 {percentile(latencies, 0.99):.1f}  "
            f"max {max(latencies):.1f}"
        )

    failures: list[str] = []
    if protocol_errors:
        failures.append(f"{protocol_errors} protocol error(s)")
    if errors:
        failures.append(f"{errors} non-shedding error response(s)")
    if answered != sent:
        failures.append(f"{sent - answered} request(s) never answered")
    if sent and rejected / sent > args.max_reject_rate:
        failures.append(
            f"rejection rate {rejected / sent:.1%} exceeds "
            f"{args.max_reject_rate:.1%}"
        )
    for i, s in enumerate(per_client):
        if s.ok == 0:
            failures.append(f"client {i} completed zero queries")
    if failures:
        print("\nFAIL: " + "; ".join(failures))
        return 1
    print("\nPASS")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7654)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument(
        "--duration", default="10s", help="e.g. 20s (default 10s)"
    )
    parser.add_argument(
        "--pipeline",
        type=int,
        default=2,
        help="max requests in flight per client (default 2)",
    )
    parser.add_argument(
        "--queries-per-template",
        type=int,
        default=5,
        help="DMV workload size per template (default 5)",
    )
    parser.add_argument(
        "--max-reject-rate",
        type=float,
        default=0.5,
        help="maximum tolerated shed fraction of all requests (default 0.5)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="request this intra-query parallelism per query (the server "
        "grants up to its --engine-workers; sheds may strip it)",
    )
    args = parser.parse_args()
    return asyncio.run(main_async(args))


if __name__ == "__main__":
    raise SystemExit(main())
