"""Regressions for limits under partitioned execution and pool cleanup.

PR 6 contract (serving layer prerequisites):

* deadline + cancellation budgets are enforced *partitioned* — the
  coordinator checks them at every wave barrier and aborts with
  partial-progress stats (row/work budgets still fall back to serial,
  where per-row safe points live);
* a query that raises mid-wave leaks nothing: ``Database.close()`` reaps
  the forked workers deterministically, a garbage-collected Database
  reaps them via the pool finalizer, and the database stays usable after
  ``close()``;
* ``CancellationToken.cancel`` is idempotent and thread-safe — exactly
  one winner, whose reason every observer reads.
"""

from __future__ import annotations

import gc
import threading
import time
from collections import Counter as MultiSet

import pytest

from repro import AdaptiveConfig, ReorderMode
from repro.dmv import load_dmv
from repro.errors import BudgetExceeded
from repro.executor.parallel import WorkerPool, parallel_fallback_reason
from repro.robustness.limits import CancellationToken, ExecutionLimits

PARALLEL_SQL = (
    "SELECT o.name, c.make FROM Demographics d, Owner o, Car c "
    "WHERE d.ownerid = o.id AND c.ownerid = o.id AND d.salary > 20000"
)


@pytest.fixture(scope="module")
def dmv():
    db, _ = load_dmv(scale=0.02)
    yield db
    db.close()


def pool_processes(db) -> list:
    pool = getattr(db, "_parallel_pool", None)
    assert pool is not None, "expected a parallel pool to exist"
    return list(pool.pool._pool)


def wait_until_dead(processes, timeout: float = 10.0) -> bool:
    deadline = time.time() + timeout
    while time.time() < deadline:
        if not any(p.is_alive() for p in processes):
            return True
        time.sleep(0.02)
    return False


# ---------------------------------------------------------------------------
# Wave-barrier enforcement
# ---------------------------------------------------------------------------
class TestParallelLimitEnforcement:
    def test_deadline_and_cancellation_do_not_force_serial(self, dmv):
        plan = dmv.plan(PARALLEL_SQL)
        config = AdaptiveConfig(mode=ReorderMode.BOTH, workers=2)
        limits = ExecutionLimits(
            timeout_seconds=30.0, cancellation=CancellationToken()
        )
        assert parallel_fallback_reason(plan, config, limits=limits) is None

    @pytest.mark.parametrize(
        "limits",
        [
            ExecutionLimits(max_rows=10),
            ExecutionLimits(max_work_units=1e6),
        ],
        ids=["rows", "work"],
    )
    def test_row_and_work_budgets_fall_back_to_serial(self, dmv, limits):
        plan = dmv.plan(PARALLEL_SQL)
        config = AdaptiveConfig(mode=ReorderMode.BOTH, workers=2)
        reason = parallel_fallback_reason(plan, config, limits=limits)
        assert reason == "row/work budgets are enforced per-process"
        # And the fallback is transparent: the query still completes, with
        # the budget honoured per-row.
        with pytest.raises(BudgetExceeded):
            dmv.execute(
                PARALLEL_SQL, config, limits=ExecutionLimits(max_rows=1)
            )

    def test_parallel_with_generous_deadline_matches_serial(self, dmv):
        serial = dmv.execute(PARALLEL_SQL, AdaptiveConfig(mode=ReorderMode.BOTH))
        limits = ExecutionLimits(
            timeout_seconds=60.0, cancellation=CancellationToken()
        )
        parallel = dmv.execute(
            PARALLEL_SQL,
            AdaptiveConfig(mode=ReorderMode.BOTH, workers=2),
            limits=limits,
        )
        assert MultiSet(parallel.rows) == MultiSet(serial.rows)
        assert parallel.stats.workers == 2

    def test_pre_cancelled_token_aborts_at_first_barrier(self, dmv):
        token = CancellationToken()
        token.cancel("client went away")
        limits = ExecutionLimits(timeout_seconds=60.0, cancellation=token)
        with pytest.raises(BudgetExceeded) as info:
            dmv.execute(
                PARALLEL_SQL,
                AdaptiveConfig(mode=ReorderMode.BOTH, workers=2),
                limits=limits,
            )
        assert "client went away" in str(info.value)
        assert info.value.rows_emitted == 0

    def test_cancellation_between_waves_reports_partial_progress(
        self, dmv, monkeypatch
    ):
        """Cancel after the first wave returns: the next barrier aborts."""
        token = CancellationToken()
        original_run = WorkerPool.run
        waves = []

        def run_then_cancel(self, tasks):
            results = original_run(self, tasks)
            waves.append(len(tasks))
            if len(waves) == 1:
                token.cancel("mid-query disconnect")
            return results

        monkeypatch.setattr(WorkerPool, "run", run_then_cancel)
        limits = ExecutionLimits(timeout_seconds=60.0, cancellation=token)
        with pytest.raises(BudgetExceeded) as info:
            dmv.execute(
                PARALLEL_SQL,
                AdaptiveConfig(mode=ReorderMode.BOTH, workers=2),
                limits=limits,
            )
        error = info.value
        assert "mid-query disconnect" in str(error)
        # Exactly the first wave's progress was merged before the abort.
        assert len(waves) == 1
        assert error.driving_rows > 0
        assert error.work_units > 0
        assert error.elapsed_seconds > 0
        # The pool survives an aborted query and serves the next one.
        result = dmv.execute(
            PARALLEL_SQL, AdaptiveConfig(mode=ReorderMode.BOTH, workers=2)
        )
        assert result.rows

    def test_tiny_deadline_aborts_partitioned_run(self, dmv):
        limits = ExecutionLimits(timeout_seconds=1e-4)
        with pytest.raises(BudgetExceeded) as info:
            dmv.execute(
                PARALLEL_SQL,
                AdaptiveConfig(mode=ReorderMode.BOTH, workers=2),
                limits=limits,
            )
        assert "deadline" in str(info.value)


# ---------------------------------------------------------------------------
# Pool cleanup: no leaked children
# ---------------------------------------------------------------------------
class TestPoolCleanup:
    def test_close_reaps_children_after_mid_wave_abort(self):
        db, _ = load_dmv(scale=0.02)
        token = CancellationToken()
        token.cancel("abort")
        with pytest.raises(BudgetExceeded):
            db.execute(
                PARALLEL_SQL,
                AdaptiveConfig(mode=ReorderMode.BOTH, workers=2),
                limits=ExecutionLimits(
                    timeout_seconds=60.0, cancellation=token
                ),
            )
        processes = pool_processes(db)
        assert processes and any(p.is_alive() for p in processes)
        db.close()
        assert wait_until_dead(processes), "close() must reap forked workers"
        assert getattr(db, "_parallel_pool", None) is None

    def test_close_is_idempotent_and_db_stays_usable(self):
        db, _ = load_dmv(scale=0.02)
        first = db.execute(
            PARALLEL_SQL, AdaptiveConfig(mode=ReorderMode.BOTH, workers=2)
        )
        db.close()
        db.close()  # idempotent
        # The pool is rebuilt on demand after close.
        again = db.execute(
            PARALLEL_SQL, AdaptiveConfig(mode=ReorderMode.BOTH, workers=2)
        )
        assert MultiSet(again.rows) == MultiSet(first.rows)
        db.close()

    def test_context_manager_closes(self):
        db, _ = load_dmv(scale=0.02)
        with db:
            db.execute(
                PARALLEL_SQL, AdaptiveConfig(mode=ReorderMode.BOTH, workers=2)
            )
            processes = pool_processes(db)
        assert wait_until_dead(processes)

    def test_abandoned_database_is_reaped_by_gc(self):
        db, _ = load_dmv(scale=0.02)
        db.execute(
            PARALLEL_SQL, AdaptiveConfig(mode=ReorderMode.BOTH, workers=2)
        )
        processes = pool_processes(db)
        assert any(p.is_alive() for p in processes)
        del db
        gc.collect()
        assert wait_until_dead(processes), (
            "the pool finalizer must reap workers of an abandoned Database"
        )


# ---------------------------------------------------------------------------
# CancellationToken thread-safety
# ---------------------------------------------------------------------------
class TestTokenThreadSafety:
    def test_exactly_one_winner_under_contention(self):
        for _ in range(20):
            token = CancellationToken()
            barrier = threading.Barrier(8)
            wins = []

            def racer(i):
                barrier.wait()
                if token.cancel(f"racer-{i}"):
                    wins.append(i)

            threads = [
                threading.Thread(target=racer, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=5.0)
            assert len(wins) == 1, "exactly one cancel() call may win"
            assert token.reason == f"racer-{wins[0]}"
            assert token.cancelled

    def test_idempotent_and_losers_keep_winning_reason(self):
        token = CancellationToken()
        assert token.cancel("first") is True
        assert token.cancel("second") is False
        assert token.reason == "first"
        assert token.cancel() is False
        assert token.reason == "first"
