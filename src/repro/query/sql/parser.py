"""Recursive-descent parser for the supported SQL subset.

Grammar (conjunctive select-project-join queries with blocking modifiers)::

    query        := SELECT select_list FROM table_list [WHERE conjunction]
                    [GROUP BY column_ref (',' column_ref)*]
                    [ORDER BY order_item (',' order_item)*]
                    [LIMIT NUMBER]
    select_list  := '*' | select_item (',' select_item)*
    select_item  := column_ref | agg_call
    agg_call     := (COUNT|SUM|AVG|MIN|MAX) '(' ('*' | column_ref) ')'
    order_item   := column_ref [ASC | DESC]
    table_list   := table_ref (',' table_ref)*
    table_ref    := IDENT [AS] [IDENT]
    conjunction  := condition (AND condition)*
    condition    := '(' disjunction ')' | simple_condition
    disjunction  := simple_condition (OR simple_condition)+   -- same table only
    simple_cond  := column_ref op literal
                  | column_ref op column_ref                  -- equi-join ('=')
                  | column_ref BETWEEN literal AND literal
                  | column_ref [NOT] IN '(' literal (',' literal)* ')'
                  | column_ref IS [NOT] NULL
    column_ref   := IDENT '.' IDENT | IDENT

Unqualified column names are resolved only for single-table queries; with
multiple tables every column must be alias-qualified (the engine has no
catalog at parse time to disambiguate).

A parenthesised group may also contain a conjunction (plain AND terms) —
it is then flattened into the top-level conjunction.
"""

from __future__ import annotations

from typing import Any

from repro.errors import SqlSyntaxError
from repro.query.joingraph import JoinPredicate
from repro.query.predicates import (
    Between,
    Comparison,
    Disjunction,
    InList,
    IsNull,
    LocalPredicate,
    Op,
)
from repro.query.query import OutputColumn, QuerySpec
from repro.query.sql.lexer import Token, TokenKind, tokenize

_OPS = {op.value: op for op in Op}


class _Parser:
    def __init__(self, sql: str) -> None:
        self.tokens = tokenize(sql)
        self.pos = 0
        self.tables: dict[str, str] = {}  # alias -> table
        self.locals: dict[str, list[LocalPredicate]] = {}
        self.joins: list[JoinPredicate] = []

    # -- token helpers --------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, kind: TokenKind, text: str | None = None) -> Token:
        token = self.peek()
        if token.kind is not kind or (text is not None and token.text != text):
            want = text or kind.value
            raise SqlSyntaxError(
                f"expected {want!r}, found {token.text or 'end of input'!r}",
                token.position,
            )
        return self.advance()

    def accept_keyword(self, word: str) -> bool:
        if self.peek().is_keyword(word):
            self.advance()
            return True
        return False

    # -- grammar ---------------------------------------------------------
    def parse(self) -> QuerySpec:
        self.expect(TokenKind.KEYWORD, "SELECT")
        raw_items = self._select_list()
        self.expect(TokenKind.KEYWORD, "FROM")
        self._table_list()
        if self.accept_keyword("WHERE"):
            self._conjunction()
        group_by = self._group_by_clause()
        order_by = self._order_by_clause()
        limit = self._limit_clause()
        self.expect(TokenKind.EOF)
        return self._build_spec(raw_items, group_by, order_by, limit)

    def _build_spec(self, raw_items, group_by_raw, order_by_raw, limit) -> QuerySpec:
        from repro.query.aggregates import AggFunc, Aggregate, OrderItem

        select_items: list = []
        has_aggregates = False
        for raw in raw_items:
            if raw[0] == "agg":
                _, func_name, argument, position = raw
                has_aggregates = True
                func = AggFunc[func_name]
                if argument is None:
                    select_items.append(Aggregate(AggFunc.COUNT_STAR))
                else:
                    column = OutputColumn(*self._resolve(*argument))
                    select_items.append(Aggregate(func, column))
            else:
                _, alias, column, position = raw
                select_items.append(
                    OutputColumn(*self._resolve(alias, column, position))
                )
        group_by = tuple(
            OutputColumn(*self._resolve(*raw)) for raw in group_by_raw
        )
        order_by = tuple(
            OrderItem(OutputColumn(*self._resolve(*raw)), descending)
            for raw, descending in order_by_raw
        )
        base = dict(
            tables=self.tables,
            local_predicates={k: tuple(v) for k, v in self.locals.items()},
            join_predicates=tuple(self.joins),
        )
        needs_item_path = has_aggregates or (
            select_items and (order_by or limit is not None or group_by)
        )
        if needs_item_path or group_by:
            return QuerySpec(
                **base,
                select_items=tuple(select_items),
                group_by=group_by,
                order_by=order_by,
                limit=limit,
            )
        if order_by or limit is not None:
            # SELECT * with modifiers: the star expansion carries every
            # column, so ordering resolves against it at execution time.
            return QuerySpec(**base, order_by=order_by, limit=limit)
        return QuerySpec(**base, projection=tuple(select_items))

    _AGG_NAMES = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})

    def _select_list(self) -> list[tuple]:
        if self.peek().kind is TokenKind.STAR:
            self.advance()
            return []
        items = [self._select_item()]
        while self.peek().kind is TokenKind.COMMA:
            self.advance()
            items.append(self._select_item())
        return items

    def _select_item(self) -> tuple:
        token = self.peek()
        if (
            token.kind is TokenKind.IDENT
            and token.text.upper() in self._AGG_NAMES
            and self.tokens[self.pos + 1].kind is TokenKind.LPAREN
        ):
            func_token = self.advance()
            func_name = func_token.text.upper()
            self.expect(TokenKind.LPAREN)
            if self.peek().kind is TokenKind.STAR:
                self.advance()
                if func_name != "COUNT":
                    raise SqlSyntaxError(
                        f"{func_name}(*) is not supported", func_token.position
                    )
                argument = None
            else:
                argument = self._column_ref()
            self.expect(TokenKind.RPAREN)
            return ("agg", func_name, argument, func_token.position)
        alias, column, position = self._column_ref()
        return ("col", alias, column, position)

    def _group_by_clause(self) -> list[tuple]:
        if not self.accept_keyword("GROUP"):
            return []
        self.expect(TokenKind.KEYWORD, "BY")
        columns = [self._column_ref()]
        while self.peek().kind is TokenKind.COMMA:
            self.advance()
            columns.append(self._column_ref())
        return columns

    def _order_by_clause(self) -> list[tuple]:
        if not self.accept_keyword("ORDER"):
            return []
        self.expect(TokenKind.KEYWORD, "BY")
        items = [self._order_item()]
        while self.peek().kind is TokenKind.COMMA:
            self.advance()
            items.append(self._order_item())
        return items

    def _order_item(self) -> tuple:
        column = self._column_ref()
        descending = False
        if self.accept_keyword("DESC"):
            descending = True
        else:
            self.accept_keyword("ASC")
        return (column, descending)

    def _limit_clause(self) -> int | None:
        if not self.accept_keyword("LIMIT"):
            return None
        token = self.expect(TokenKind.NUMBER)
        if not isinstance(token.value, int) or token.value < 0:
            raise SqlSyntaxError(
                "LIMIT requires a non-negative integer", token.position
            )
        return token.value

    def _table_list(self) -> None:
        self._table_ref()
        while self.peek().kind is TokenKind.COMMA:
            self.advance()
            self._table_ref()

    def _table_ref(self) -> None:
        name_token = self.expect(TokenKind.IDENT)
        alias = name_token.text
        self.accept_keyword("AS")
        if self.peek().kind is TokenKind.IDENT:
            alias = self.advance().text
        if alias in self.tables:
            raise SqlSyntaxError(
                f"duplicate table alias {alias!r}", name_token.position
            )
        self.tables[alias] = name_token.text
        self.locals[alias] = []

    def _column_ref(self) -> tuple[str | None, str, int]:
        """Returns (alias_or_None, column, position)."""
        first = self.expect(TokenKind.IDENT)
        if self.peek().kind is TokenKind.DOT:
            self.advance()
            second = self.expect(TokenKind.IDENT)
            return first.text, second.text, first.position
        return None, first.text, first.position

    def _resolve(
        self, alias: str | None, column: str, position: int
    ) -> tuple[str, str]:
        if alias is None:
            if len(self.tables) != 1:
                raise SqlSyntaxError(
                    f"column {column!r} must be alias-qualified in a "
                    "multi-table query",
                    position,
                )
            alias = next(iter(self.tables))
        if alias not in self.tables:
            raise SqlSyntaxError(f"unknown table alias {alias!r}", position)
        return alias, column

    def _conjunction(self) -> None:
        self._condition()
        while self.accept_keyword("AND"):
            self._condition()

    def _condition(self) -> None:
        if self.peek().kind is TokenKind.LPAREN:
            open_token = self.advance()
            first, connective = self._grouped_first()
            if connective == "OR":
                self._finish_disjunction(first, open_token)
            else:
                # A parenthesised conjunction (or single term): flatten.
                self._add_condition(first)
                while self.accept_keyword("AND"):
                    self._condition()
                self.expect(TokenKind.RPAREN)
            return
        self._add_condition(self._simple_condition())

    def _grouped_first(self) -> tuple[Any, str | None]:
        """Parse the first term inside parentheses and peek the connective."""
        first = self._simple_condition()
        if self.peek().is_keyword("OR"):
            return first, "OR"
        return first, "AND" if self.peek().is_keyword("AND") else None

    def _finish_disjunction(self, first: Any, open_token: Token) -> None:
        alias, terms = first
        if alias is None:
            raise SqlSyntaxError(
                "join predicates cannot appear inside OR groups",
                open_token.position,
            )
        disjuncts: list[LocalPredicate] = [terms]
        while self.accept_keyword("OR"):
            term_alias, term = self._simple_condition()
            if term_alias is None:
                raise SqlSyntaxError(
                    "join predicates cannot appear inside OR groups",
                    open_token.position,
                )
            if term_alias != alias:
                raise SqlSyntaxError(
                    "OR groups must reference a single table "
                    f"(found {alias!r} and {term_alias!r})",
                    open_token.position,
                )
            disjuncts.append(term)
        self.expect(TokenKind.RPAREN)
        self.locals[alias].append(Disjunction(disjuncts))

    def _add_condition(self, parsed: tuple[str | None, Any]) -> None:
        alias, payload = parsed
        if alias is None:
            self.joins.append(payload)
        else:
            self.locals[alias].append(payload)

    def _simple_condition(self) -> tuple[str | None, Any]:
        """Returns (alias, LocalPredicate) or (None, JoinPredicate)."""
        left_alias, left_column, position = self._column_ref()
        token = self.peek()
        if token.is_keyword("IS"):
            self.advance()
            negated = self.accept_keyword("NOT")
            self.expect(TokenKind.KEYWORD, "NULL")
            alias, column = self._resolve(left_alias, left_column, position)
            return alias, IsNull(column, negated=negated)
        if token.is_keyword("BETWEEN"):
            self.advance()
            low = self._literal()
            self.expect(TokenKind.KEYWORD, "AND")
            high = self._literal()
            alias, column = self._resolve(left_alias, left_column, position)
            return alias, Between(column, low, high)
        if token.is_keyword("IN") or token.is_keyword("NOT"):
            if self.accept_keyword("NOT"):
                raise SqlSyntaxError("NOT IN is not supported", token.position)
            self.advance()  # IN
            self.expect(TokenKind.LPAREN)
            values = [self._literal()]
            while self.peek().kind is TokenKind.COMMA:
                self.advance()
                values.append(self._literal())
            self.expect(TokenKind.RPAREN)
            alias, column = self._resolve(left_alias, left_column, position)
            return alias, InList(column, values)
        if token.kind is TokenKind.OPERATOR:
            op_token = self.advance()
            op = _OPS[op_token.text]
            right = self.peek()
            if right.kind is TokenKind.IDENT:
                right_alias, right_column, right_pos = self._column_ref()
                if op is not Op.EQ:
                    raise SqlSyntaxError(
                        "only equality join predicates are supported",
                        op_token.position,
                    )
                la, lc = self._resolve(left_alias, left_column, position)
                ra, rc = self._resolve(right_alias, right_column, right_pos)
                if la == ra:
                    raise SqlSyntaxError(
                        "column-to-column predicates within one table are "
                        "not supported",
                        op_token.position,
                    )
                return None, JoinPredicate(la, lc, ra, rc)
            value = self._literal()
            alias, column = self._resolve(left_alias, left_column, position)
            return alias, Comparison(column, op, value)
        raise SqlSyntaxError(
            f"expected a comparison, found {token.text!r}", token.position
        )

    def _literal(self) -> Any:
        token = self.peek()
        if token.kind in (TokenKind.STRING, TokenKind.NUMBER):
            return self.advance().value
        raise SqlSyntaxError(
            f"expected a literal, found {token.text or 'end of input'!r}",
            token.position,
        )


def parse_sql(sql: str) -> QuerySpec:
    """Parse a SELECT-FROM-WHERE statement into a :class:`QuerySpec`."""
    return _Parser(sql).parse()
