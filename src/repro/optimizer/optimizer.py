"""The static, compile-time optimizer.

Produces one :class:`PipelinePlan` for a query: it chooses each table's
single-table access plan (its :class:`DrivingSpec` and available probe
indexes), estimates selectivities from catalog statistics under uniformity +
independence, and exhaustively searches connected join orders under the
Eq (1) cost model — i.e. it finds the plan that *is* optimal for its
estimates, the same standard the paper's commercial optimizer meets. When
the estimates are wrong (skew, correlation), so is the plan; that is the gap
the adaptive layer closes.
"""

from __future__ import annotations

from repro.catalog.catalog import Catalog
from repro.errors import PlanError
from repro.optimizer.cost import best_order_exhaustive
from repro.optimizer.params import ModelProvider, TableModel
from repro.optimizer.plans import (
    DrivingKind,
    DrivingSpec,
    LegEstimates,
    PipelinePlan,
    PlanLeg,
)
from repro.optimizer.selectivity import Estimator, join_selectivity
from repro.query.joingraph import JoinPredicate
from repro.query.predicates import LocalPredicate
from repro.query.query import OutputColumn, QuerySpec
from repro.storage.cursor import KeyRange, normalize_ranges


def _validate(query: QuerySpec, catalog: Catalog) -> None:
    for alias, table_name in query.tables.items():
        table = catalog.table(table_name)  # raises CatalogError if unknown
        for predicate in query.locals_of(alias):
            for column in predicate.columns():
                table.schema.position_of(column)
    for predicate in query.join_predicates:
        for alias in (predicate.left, predicate.right):
            table = catalog.table(query.table_of(alias))
            table.schema.position_of(predicate.column_of(alias))


def expand_projection(query: QuerySpec, catalog: Catalog) -> tuple[OutputColumn, ...]:
    """Resolve the projection; an empty projection means ``SELECT *``."""
    if query.projection:
        for output in query.projection:
            table = catalog.table(query.table_of(output.alias))
            table.schema.position_of(output.column)
        return query.projection
    expanded: list[OutputColumn] = []
    for alias, table_name in query.tables.items():
        schema = catalog.table(table_name).schema
        expanded.extend(OutputColumn(alias, name) for name in schema.column_names())
    return tuple(expanded)


def choose_driving_spec(
    alias: str,
    predicates: tuple[LocalPredicate, ...],
    indexed_columns: frozenset[str],
    estimator: Estimator,
) -> tuple[DrivingSpec, float, float]:
    """Pick the driving access path for one table.

    Returns (spec, sel_local_index, sel_local_residual). The most selective
    sargable predicate on an indexed column wins — judged by the *estimated*
    selectivity, so skew can make this choice wrong (the paper's Template 4 /
    Example 3 failure, Sec 5.3).
    """
    best_column: str | None = None
    best_ranges: list[KeyRange] | None = None
    best_sel = 1.0
    best_predicate: LocalPredicate | None = None
    for predicate in predicates:
        for column in predicate.columns():
            if column not in indexed_columns:
                continue
            ranges = predicate.key_ranges(column)
            if ranges is None:
                continue
            sel = estimator.predicate_selectivity(predicate)
            if sel < best_sel or best_column is None:
                best_column = column
                best_ranges = ranges
                best_sel = sel
                best_predicate = predicate
    if best_column is None:
        return DrivingSpec(DrivingKind.TABLE_SCAN), 1.0, estimator.conjunction_selectivity(predicates)
    residual = [p for p in predicates if p is not best_predicate]
    sel_residual = estimator.conjunction_selectivity(tuple(residual))
    spec = DrivingSpec(
        DrivingKind.INDEX_SCAN,
        index_column=best_column,
        ranges=tuple(normalize_ranges(list(best_ranges or []))),
        est_index_selectivity=best_sel,
    )
    return spec, best_sel, sel_residual


class StaticOptimizer:
    """Builds the initial pipelined plan for a query."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    def optimize(self, query: QuerySpec) -> PipelinePlan:
        _validate(query, self.catalog)
        graph = query.join_graph()
        if len(query.aliases) > 1 and not graph.is_connected():
            raise PlanError(
                "query join graph is disconnected; Cartesian products are "
                "not supported by the pipelined executor"
            )

        legs: dict[str, PlanLeg] = {}
        models: dict[str, TableModel] = {}
        for alias, table_name in query.tables.items():
            table = self.catalog.table(table_name)
            stats = self.catalog.stats(table_name)
            estimator = Estimator(stats)
            indexed = frozenset(self.catalog.indexes_of(table_name))
            predicates = query.locals_of(alias)
            spec, sel_index, sel_residual = choose_driving_spec(
                alias, predicates, indexed, estimator
            )
            base_cardinality = (
                stats.cardinality if stats is not None else len(table)
            )
            estimates = LegEstimates(
                base_cardinality=base_cardinality,
                sel_local_index=sel_index,
                sel_local_residual=sel_residual,
            )
            legs[alias] = PlanLeg(
                alias=alias,
                table_name=table_name,
                driving=spec,
                local_predicates=predicates,
                estimates=estimates,
            )
            models[alias] = TableModel(
                alias=alias,
                base_cardinality=base_cardinality,
                sel_local_index=sel_index,
                sel_local_residual=sel_residual,
                local_predicate_count=len(predicates),
                indexed_columns=indexed,
                driving_kind=spec.kind,
                driving_range_count=max(len(spec.ranges), 1),
            )

        # One selectivity per column equivalence class: 1 / max(ndv) over
        # the class's endpoints (the standard equi-join estimate, applied
        # to derived predicates as well).
        class_sels: dict[int, float] = {}
        for class_index, members in enumerate(graph.classes):
            ndvs = []
            cardinalities = []
            for alias, column in members:
                stats = self.catalog.stats(query.table_of(alias))
                table = self.catalog.table(query.table_of(alias))
                cardinalities.append(
                    stats.cardinality if stats is not None else len(table)
                )
                if stats is None:
                    continue
                column_stats = stats.column(column)
                if column_stats is not None and column_stats.ndv > 0:
                    ndvs.append(column_stats.ndv)
            if ndvs:
                class_sels[class_index] = 1.0 / max(ndvs)
            elif cardinalities:
                # No column statistics: assume the class's widest table is
                # joined on its key (the textbook PK-FK default).
                class_sels[class_index] = 1.0 / max(max(cardinalities), 1)
            else:
                class_sels[class_index] = 0.01
        # Per-written-predicate selectivities, for EXPLAIN display.
        join_sels: dict[JoinPredicate, float] = {}
        for predicate in query.join_predicates:
            class_id = graph.class_id(predicate.left, predicate.left_column)
            if class_id is not None:
                join_sels[predicate] = class_sels[class_id]
            else:
                left_stats = self.catalog.stats(query.table_of(predicate.left))
                right_stats = self.catalog.stats(query.table_of(predicate.right))
                join_sels[predicate] = join_selectivity(
                    predicate, left_stats, right_stats
                )

        provider = ModelProvider(models, class_sels, graph)
        if len(query.aliases) == 1:
            order: tuple[str, ...] = (query.aliases[0],)
            cost = provider.driving_params(order[0])[1]
        else:
            order, cost = best_order_exhaustive(query.aliases, graph, provider)

        return PipelinePlan(
            query=query,
            order=order,
            legs=legs,
            join_predicates=tuple(query.join_predicates),
            join_selectivities=join_sels,
            class_selectivities=class_sels,
            projection=expand_projection(query, self.catalog),
            estimated_cost=cost,
        )
