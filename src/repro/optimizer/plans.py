"""Physical plan structures for pipelined NLJN plans.

A :class:`PipelinePlan` is one join order over per-table *legs*. Each
:class:`PlanLeg` carries everything needed to run the table in **either**
role:

* as the *driving* leg — a :class:`DrivingSpec` (table scan, or index scan
  with pushed-down key ranges), and
* as an *inner* leg — probed through whatever join-column index is available
  given the legs bound before it (chosen at run time, because availability
  changes when the order changes).

This is the paper's "one initial execution plan with a small number of
switchable single-table access plans" (Sec 1, contribution 1): the adaptive
layer permutes legs of one plan instead of compiling many alternatives.

Legs also carry the optimizer's cardinality/selectivity estimates; the
run-time monitors start from these priors and refine them (Sec 4.3.3 notes
the initial driving leg's index selectivity comes from the optimizer).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Mapping, Sequence

from repro.query.joingraph import JoinPredicate
from repro.query.predicates import LocalPredicate
from repro.query.query import OutputColumn, QuerySpec
from repro.storage.cursor import KeyRange


class DrivingKind(enum.Enum):
    TABLE_SCAN = "table-scan"
    INDEX_SCAN = "index-scan"


@dataclass(frozen=True)
class DrivingSpec:
    """How a leg scans its table when it is the driving (outer-most) leg."""

    kind: DrivingKind
    index_column: str | None = None
    ranges: tuple[KeyRange, ...] = ()
    # Estimated selectivity of the predicate(s) pushed into the index scan
    # (the paper's S_LPI); 1.0 for table scans.
    est_index_selectivity: float = 1.0

    def describe(self) -> str:
        if self.kind is DrivingKind.TABLE_SCAN:
            return "TABLE SCAN (RID order)"
        return f"INDEX SCAN on {self.index_column} ({len(self.ranges)} range(s))"


@dataclass(frozen=True)
class LegEstimates:
    """Optimizer estimates for one leg (the run-time monitors' priors)."""

    base_cardinality: int
    # S_LPI: selectivity of locals pushed into the driving index scan.
    sel_local_index: float
    # S_LPR: selectivity of the remaining (residual) local predicates.
    sel_local_residual: float

    @property
    def sel_local(self) -> float:
        return self.sel_local_index * self.sel_local_residual

    @property
    def leg_cardinality(self) -> float:
        """C_LEG(T) = C(T) * S_LP(T) (Eq 9)."""
        return self.base_cardinality * self.sel_local


@dataclass(frozen=True)
class PlanLeg:
    """One table's switchable single-table access plan."""

    alias: str
    table_name: str
    driving: DrivingSpec
    local_predicates: tuple[LocalPredicate, ...]
    estimates: LegEstimates

    def describe(self) -> str:
        locals_str = " AND ".join(str(p) for p in self.local_predicates) or "-"
        return (
            f"{self.alias} ({self.table_name}): driving={self.driving.describe()}, "
            f"locals=[{locals_str}], "
            f"C={self.estimates.base_cardinality}, "
            f"est C_LEG={self.estimates.leg_cardinality:.1f}"
        )


@dataclass(frozen=True)
class PipelinePlan:
    """A pipelined NLJN plan: an ordered sequence of legs."""

    query: QuerySpec
    order: tuple[str, ...]  # aliases, driving leg first
    legs: Mapping[str, PlanLeg]
    join_predicates: tuple[JoinPredicate, ...]
    # Estimated selectivity per written join predicate (for display).
    join_selectivities: Mapping[JoinPredicate, float]
    # Estimated selectivity per join-column equivalence class (what the
    # cost model actually consumes — covers derived predicates too).
    class_selectivities: Mapping[int, float]
    projection: tuple[OutputColumn, ...]
    estimated_cost: float = float("nan")

    def leg(self, alias: str) -> PlanLeg:
        return self.legs[alias]

    @property
    def driving_alias(self) -> str:
        return self.order[0]

    def with_order(self, order: Sequence[str]) -> "PipelinePlan":
        """The same plan with a different leg order (used for what-ifs)."""
        return replace(self, order=tuple(order))

    def explain(self) -> str:
        lines = [f"PipelinePlan (estimated cost {self.estimated_cost:.1f} work units)"]
        for position, alias in enumerate(self.order, start=1):
            role = "DRIVING" if position == 1 else "INNER"
            lines.append(f"  {position}. [{role}] {self.legs[alias].describe()}")
        for predicate in self.join_predicates:
            sel = self.join_selectivities.get(predicate)
            sel_str = f" (est sel {sel:.2e})" if sel is not None else ""
            lines.append(f"  JOIN {predicate}{sel_str}")
        return "\n".join(lines)
