"""Intra-query parallelism: range-partitioned execution of the driving leg.

The pipelined NLJN plan is embarrassingly parallel over its driving scan:
each worker runs the full pipeline over one contiguous slice of the driving
scan's stable total order (RID order for table scans, (key, RID) order for
index scans) and the coordinator concatenates the slices' outputs — row
order is exactly the serial order because partitions are consumed in scan
order.

Process model: a persistent ``fork`` worker pool per
:class:`~repro.db.Database`. The (read-only) catalog is inherited by the
children via copy-on-write at fork time — nothing is serialized per query
except the :class:`~repro.optimizer.plans.PipelinePlan` (plain frozen
data), the demoted worker config, and the partition bounds. The pool is
invalidated whenever the catalog generation (table versions / table count /
index count) changes.

Load balancing: the driving scan is *over-partitioned* into
``workers * OVERPARTITION`` slices per wave and handed to ``pool.map`` with
``chunksize=1``, so idle workers dynamically pull the next slice. This
bounds the impact of skew (one hot driving entry inflating a slice) to a
single slice's work instead of ``1/workers`` of the scan. The reported
critical path models the same dynamics with a greedy list schedule:
slices are assigned in dispatch order to the least-loaded of ``workers``
bins and the wave's critical path is the fullest bin.

Adaptation under partitioning:

* **inner reordering** runs *locally* in each worker — a depleted-suffix
  permutation is sound for any subset of driving rows, so workers adapt
  their own pipelines independently (mode ``BOTH`` is demoted to
  ``INNER_ONLY`` per worker, ``DRIVING_ONLY`` to ``MONITOR_ONLY`` so the
  monitors keep measuring);
* **driving-leg switching** is a *coordinator* decision: waves of
  ``workers`` partitions run to a barrier, the per-worker windowed counters
  are merged (:mod:`repro.executor.monitor_merge`) into a host pipeline,
  and :func:`~repro.core.driving.decide_driving_switch` is evaluated on the
  merged estimates. When a switch is beneficial the remaining partitions
  are drained into a single *serial continuation* that starts at the
  consumed scan boundary with the full adaptive config — the standard
  switch machinery (positional predicates, frozen scans) then applies.

Work accounting: worker meters are merged into the coordinator's catalog
meter, so ``ExecutionStats.work`` keeps its meaning. The one documented
divergence from a serial run is up to one extra ``INDEX_DESCEND`` charge
per key range per extra partition that enters it (each bounded cursor
descends into the range it resumes).

Vectorized partitions: when the columnar backend and chunk-granularity
monitoring are active, each worker's pipeline runs the PR 9 vectorized
cascades over its :class:`ScanPartition` — the static cascade under mode
``NONE`` and the chunked adaptive cascade under the monitored modes, with
kernel-folded monitoring and local kept-inner reorders mid-partition.
:func:`warm_kernel_plan` materializes the numpy column arrays, CSR index
sidecars, and per-predicate group kernels on the catalog *before* the
fork pool is created, so workers COW-share one copy instead of each
rebuilding them. A cascade gate failure inside a worker demotes only that
partition to the generic loop (its engine is reported per worker on
``ExecutionStats.worker_engines`` with the first gate reason on
``vector_gate``); siblings keep their cascades. Deferred chunk folds that
are still pending at a snapshot are merged at wave barriers in the serial
fold order (see :mod:`repro.executor.monitor_merge`), so coordinator
driving decisions see the same windows a serial cascade would, and the
serial continuation resumes the cascade rather than falling back to
scalar.
"""

from __future__ import annotations

import dataclasses
import heapq
import multiprocessing
import pickle
import signal
import threading
import time
import weakref
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.config import AdaptiveConfig, ReorderMode
from repro.core.controller import AdaptationController
from repro.core.driving import decide_driving_switch
from repro.core.events import AdaptationEvent, EventKind
from repro.core.ranks import RuntimeModelBuilder
from repro.errors import BudgetExceeded
from repro.executor.monitor_merge import (
    MonitorSnapshot,
    inject_into_host,
    merge_snapshots,
    snapshot_executor,
)
from repro.optimizer.cost import cost_of_order
from repro.optimizer.plans import DrivingKind, PipelinePlan
from repro.robustness.guard import SandboxedController
from repro.storage.counters import REORDER_CHECK_COST, WorkMeter
from repro.storage.cursor import ScanPartition, normalize_ranges

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.catalog.catalog import Catalog

# Waves per worker when driving switches are armed: each wave ends at a
# barrier where the coordinator re-evaluates the driving choice on merged
# estimates, so smaller waves mean earlier switch opportunities at the cost
# of more barriers.
BARRIER_WAVES = 4

# Slices dispatched per worker per wave. Over-partitioning lets pool.map's
# dynamic dequeue (chunksize=1) balance skewed driving ranges: a hot slice
# delays only itself, and the other workers keep pulling the remaining
# slices.
OVERPARTITION = 4

# Inherited by fork at pool-creation time; never mutated by workers.
_WORKER_CATALOG: "Catalog | None" = None


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class _WorkerTask:
    """Everything a worker needs beyond the fork-inherited catalog.

    The coordinator's plan is shipped verbatim (it is plain data), so
    workers never re-run the optimizer and custom plans partition too.
    """

    plan: PipelinePlan
    config: AdaptiveConfig
    partition: ScanPartition
    # Arm a metrics-only observability bundle in the worker and ship the
    # counters back, so coordinator-side EXPLAIN ANALYZE sees the real
    # per-leg row flow (set when the coordinator's registry is armed).
    collect_metrics: bool = False


@dataclass(frozen=True)
class _WorkerResult:
    """One partition's output and everything its monitors learned."""

    rows: list[tuple[Any, ...]]
    work: WorkMeter
    snapshot: MonitorSnapshot
    events: tuple[AdaptationEvent, ...]
    driving_rows: int
    inner_reorders: int
    inner_checks: int
    final_order: tuple[str, ...]
    # Which engine ran this partition ("vector" / "vector-adaptive" / ...)
    # and, when a cascade gate failed in-worker, why. A gate failure
    # demotes only this worker to its generic loop — siblings that pass
    # the gates keep their cascades.
    engine: str = "scalar"
    vector_gate: str | None = None
    # Counter name -> label -> value, from the worker's metrics registry.
    metrics: dict[str, dict[str, float]] | None = None


def demote_worker_mode(mode: ReorderMode) -> ReorderMode:
    """The per-worker reorder mode for a coordinator-level *mode*.

    Driving switches are coordinator decisions, so the driving half of the
    mode is stripped — but never the monitors, which feed the merge.
    """
    if mode is ReorderMode.BOTH:
        return ReorderMode.INNER_ONLY
    if mode is ReorderMode.DRIVING_ONLY:
        return ReorderMode.MONITOR_ONLY
    return mode


def _run_partition_task(task: _WorkerTask) -> _WorkerResult:
    """Pool target: run the pipeline over one driving partition."""
    catalog = _WORKER_CATALOG
    if catalog is None:  # pragma: no cover - pool misconfiguration
        raise RuntimeError("parallel worker started without a catalog")
    from repro.executor.batch import BatchedPipelineExecutor
    from repro.executor.pipeline import PipelineExecutor

    plan = task.plan
    config = task.config
    controller = (
        SandboxedController(AdaptationController(config))
        if config.mode.monitors
        else None
    )
    executor_cls = (
        BatchedPipelineExecutor if config.batched else PipelineExecutor
    )
    obs = None
    if task.collect_metrics:
        from repro.obs.metrics import Counter, MetricsRegistry
        from repro.obs.observer import QueryObservability

        obs = QueryObservability(metrics=MetricsRegistry())
    executor = executor_cls(plan, catalog, config, controller, obs=obs)
    if controller is not None:
        controller.attach(executor)
    executor.driving_partition = task.partition
    before = catalog.meter.snapshot()
    rows = executor.run_to_completion()
    metrics = None
    if obs is not None and obs.metrics is not None:
        metrics = {
            name: metric.as_dict()
            for name in obs.metrics.names()
            if isinstance(metric := obs.metrics.get(name), Counter)
        }
    return _WorkerResult(
        rows=rows,
        work=catalog.meter - before,
        snapshot=snapshot_executor(executor),
        events=tuple(executor.events),
        driving_rows=executor.driving_rows_total,
        inner_reorders=executor.inner_reorders,
        inner_checks=controller.inner_checks if controller is not None else 0,
        final_order=tuple(executor.order),
        engine=executor.engine_used,
        vector_gate=executor.vector_gate_reason,
        metrics=metrics,
    )


# ---------------------------------------------------------------------------
# Kernel-plan warm-up (pre-fork)
# ---------------------------------------------------------------------------
def warm_kernel_plan(
    catalog: "Catalog", plan: PipelinePlan, config: AdaptiveConfig
) -> bool:
    """Materialize the plan's columnar kernel state on catalog objects.

    The vectorized cascades lazily build numpy sidecars (CSR entry
    arrays), per-predicate group kernels, materialized row caches, and
    the lazily-built index entry lists the rank models read. All of that
    lives on catalog-owned tables/indexes, so building it *before* the
    fork pool is (re)created lets every worker inherit the arrays
    copy-on-write instead of rebuilding them per process. Returns True
    when anything new was built — the caller bumps its warm epoch so
    :func:`ensure_pool` re-forks and the children actually see the
    arrays. Never charges the work meter (no cursors are opened) and
    never mutates rows, so a throwaway compile is safe.
    """
    from repro.executor.vector import _adaptive_plan, _np
    from repro.storage.columnar import ColumnarIndex, ColumnarTable

    if _np is None or not config.batched:
        return False
    tables = [catalog.table(plan.query.tables[alias]) for alias in plan.order]
    if not any(isinstance(table, ColumnarTable) for table in tables):
        return False
    from repro.executor.batch import BatchedPipelineExecutor

    changed = False
    for table in tables:
        if isinstance(table, ColumnarTable):
            if len(table._rows) != len(table):
                changed = True
            table._materialized()
    executor = BatchedPipelineExecutor(plan, catalog, _serial_config(config))
    executor._compile_all_probes(start_position=1)
    # Driving-side sidecar: the cascade's entry walk reads _ent_rids.
    driving_leg = executor.legs[plan.order[0]]
    spec = plan.leg(plan.order[0]).driving
    if spec.kind is DrivingKind.INDEX_SCAN and spec.index_column:
        index = driving_leg.indexes.get(spec.index_column)
        if isinstance(index, ColumnarIndex):
            if index._gen is None or index._gen != index._generation():
                changed = True
            index._sidecar()
    # Inner-side sidecars + group kernels + key translators, exactly the
    # objects adaptive_cascade/vector_cascade will look up in-worker.
    kernel_count = 0
    indexes: list[ColumnarIndex] = []
    for position in range(1, len(plan.order)):
        leg = executor.legs[plan.order[position]]
        probe = leg.probe_config
        if probe is not None and isinstance(probe.access_index, ColumnarIndex):
            indexes.append(probe.access_index)
    for index in indexes:
        if index._gen is None or index._gen != index._generation():
            changed = True
        kernel_count += len(index._kernels)
    _adaptive_plan(executor)
    if sum(len(index._kernels) for index in indexes) != kernel_count:
        changed = True
    # Force the rank models once: TableModel construction walks
    # count_range over each leg's driving index, building any
    # still-lazy entry lists the coordinator's reorder checks (and the
    # workers' in-partition checks) would otherwise build per process.
    builder = RuntimeModelBuilder(executor)
    provider = builder.build_provider()
    for alias in plan.order:
        provider.models[alias]
    return changed


# ---------------------------------------------------------------------------
# Pool lifecycle
# ---------------------------------------------------------------------------
def catalog_generation(catalog: "Catalog") -> tuple:
    """A cheap fingerprint of catalog contents for pool invalidation."""
    tables = catalog._tables
    return (
        tuple(sorted(tables)),
        tuple(tables[name].version for name in sorted(tables)),
        tuple(
            (name, tuple(sorted(catalog._indexes[name])))
            for name in sorted(catalog._indexes)
        ),
    )


def _terminate_pool(pool) -> None:
    """Terminate and reap a multiprocessing pool's forked workers."""
    pool.terminate()
    pool.join()


def _pool_worker_init() -> None:
    """Reset inherited signal state in a freshly forked pool worker.

    Children fork from whatever process owns the Database — under the
    query server that process has an asyncio SIGTERM drain handler (and
    a signal wakeup fd) installed, and a child inheriting it would treat
    the SIGTERM sent by ``Pool.terminate()`` as a drain request it can
    never act on: pool invalidation (or server shutdown) would then hang
    forever joining an unkillable worker. Restore the default SIGTERM
    disposition so terminate() works; ignore SIGINT so a console Ctrl-C
    interrupts only the coordinator, which then tears the pool down.
    """
    signal.set_wakeup_fd(-1)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)


class WorkerPool:
    """A persistent fork pool bound to one catalog generation."""

    def __init__(
        self, catalog: "Catalog", workers: int, warm_epoch: int = 0
    ) -> None:
        global _WORKER_CATALOG
        self.workers = workers
        self.generation = catalog_generation(catalog)
        # Kernel-plan warm epoch at fork time: bumped by the coordinator
        # whenever warm_kernel_plan built new columnar arrays, so the pool
        # re-forks and the children COW-share them instead of rebuilding.
        self.warm_epoch = warm_epoch
        context = multiprocessing.get_context("fork")
        # The module global is read by children at fork time (COW); restore
        # it afterwards so the parent keeps no extra reference.
        _WORKER_CATALOG = catalog
        try:
            self.pool = context.Pool(
                processes=workers, initializer=_pool_worker_init
            )
        finally:
            _WORKER_CATALOG = None
        # Guarantee the forked children are reaped even when the owning
        # Database is dropped without close() — e.g. after a query raised
        # mid-wave and the caller abandoned the handle. The finalizer
        # holds only the raw pool, never `self`, so it cannot keep the
        # WorkerPool (or the catalog) alive.
        self._finalizer = weakref.finalize(self, _terminate_pool, self.pool)

    def run(self, tasks: list[_WorkerTask]) -> list[_WorkerResult]:
        return self.pool.map(_run_partition_task, tasks, chunksize=1)

    def close(self) -> None:
        # Route through the finalizer so close() and GC are idempotent
        # views of the same cleanup.
        self._finalizer()


#: Guards lazy creation of per-holder parallel locks (non-Database
#: holders in tests; Database creates its own in __init__).
_LOCK_GUARD = threading.Lock()


def _holder_parallel_lock(holder: Any) -> threading.Lock:
    """The lock serializing *holder*'s pool lifecycle and partitioned runs.

    Concurrent server threads may execute parallel queries against one
    shared Database; a warm-up or generation change in one thread
    invalidates (closes) the pool, which must never happen while another
    thread is mid-wave on it. Serializing whole partitioned executions is
    the simple safe answer — a parallel query already wants every core,
    so two running concurrently would only fight each other anyway.
    """
    lock = getattr(holder, "_parallel_lock", None)
    if lock is None:
        with _LOCK_GUARD:
            lock = getattr(holder, "_parallel_lock", None)
            if lock is None:
                lock = threading.Lock()
                holder._parallel_lock = lock
    return lock


def ensure_pool(
    holder: Any, catalog: "Catalog", workers: int, warm_epoch: int = 0
) -> WorkerPool:
    """Get (or rebuild) *holder*'s pool for this catalog generation."""
    pool: WorkerPool | None = getattr(holder, "_parallel_pool", None)
    if pool is not None and (
        pool.workers != workers
        or pool.generation != catalog_generation(catalog)
        or pool.warm_epoch != warm_epoch
    ):
        pool.close()
        pool = None
    if pool is None:
        pool = WorkerPool(catalog, workers, warm_epoch)
        holder._parallel_pool = pool
    return pool


# ---------------------------------------------------------------------------
# Partitioning
# ---------------------------------------------------------------------------
def compute_partitions(
    plan: PipelinePlan, catalog: "Catalog", slices: int
) -> list[ScanPartition] | None:
    """Split the driving scan into up to *slices* contiguous partitions.

    Boundary positions are found from metadata only: RID arithmetic for
    table scans, an uncharged index walk (``peek_range``) for index scans.
    Returns None when the scan is too small to split.
    """
    driving_alias = plan.order[0]
    leg = plan.leg(driving_alias)
    spec = leg.driving
    table = catalog.table(plan.query.tables[driving_alias])
    if spec.kind is DrivingKind.INDEX_SCAN:
        index = catalog.index_on(table.schema.name, spec.index_column or "")
        if index is None:
            return None
        ranges = normalize_ranges(list(spec.ranges)) if spec.ranges else None
        if ranges is None:
            from repro.storage.cursor import KeyRange

            ranges = [KeyRange()]
        total = sum(
            index.count_range(
                r.low, r.high, r.low_inclusive, r.high_inclusive
            )
            for r in ranges
        )
        slices = min(slices, total)
        if slices < 2:
            return None
        # Ordinals where partitions begin; record the positions of each
        # boundary entry and its predecessor in one uncharged walk.
        starts = [total * i // slices for i in range(1, slices)]
        wanted = set(starts) | {ordinal - 1 for ordinal in starts}
        positions: dict[int, tuple] = {}
        ordinal = 0
        for key_range in ranges:
            for key, rid in index.peek_range(
                low=key_range.low,
                high=key_range.high,
                low_inclusive=key_range.low_inclusive,
                high_inclusive=key_range.high_inclusive,
            ):
                if ordinal in wanted:
                    positions[ordinal] = (key, rid)
                    if len(positions) == len(wanted):
                        break
                ordinal += 1
            else:
                continue
            break
        partitions: list[ScanPartition] = []
        bounds = [0, *starts, total]
        for i in range(slices):
            lo, hi = bounds[i], bounds[i + 1]
            partitions.append(
                ScanPartition(
                    start_after=positions[lo - 1] if lo > 0 else None,
                    stop_at=positions[hi] if hi < total else None,
                    entry_count=hi - lo,
                )
            )
        return partitions
    total = len(table)
    slices = min(slices, total)
    if slices < 2:
        return None
    partitions = []
    for i in range(slices):
        lo = total * i // slices
        hi = total * (i + 1) // slices
        partitions.append(
            ScanPartition(
                start_after=(lo - 1,) if lo > 0 else None,
                stop_at=(hi,) if hi < total else None,
                entry_count=hi - lo,
            )
        )
    return partitions


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------
@dataclass
class ParallelOutcome:
    """What a partitioned execution produced, pre-merged for the facade."""

    rows: list[tuple[Any, ...]]
    events: list[AdaptationEvent] = field(default_factory=list)
    order_history: list[tuple[str, ...]] = field(default_factory=list)
    final_order: tuple[str, ...] = ()
    driving_rows: int = 0
    inner_reorders: int = 0
    driving_switches: int = 0
    inner_checks: int = 0
    driving_checks: int = 0
    wall_seconds: float = 0.0
    workers_used: int = 0
    partitions_run: int = 0
    # One engine name per partition in dispatch order ("vector",
    # "vector-adaptive", "vector-adaptive+fast", ...), plus the serial
    # continuation's engine when one ran. The first in-worker gate reason
    # is surfaced so EXPLAIN ANALYZE can say *why* a partition demoted.
    worker_engines: list[str] = field(default_factory=list)
    vector_gate: str | None = None
    # Work units on the critical path: per wave the slowest partition,
    # plus coordinator decisions and any serial continuation. Bounds
    # wall-clock on a machine with >= ``workers`` cores — the deterministic
    # analogue of parallel elapsed time.
    critical_path_units: float = 0.0


def parallel_fallback_reason(
    plan: PipelinePlan,
    config: AdaptiveConfig,
    *,
    limits=None,
    fault_plan=None,
    oracle=None,
) -> str | None:
    """Why this execution cannot be partitioned (None = it can)."""
    if "fork" not in multiprocessing.get_all_start_methods():
        return "fork start method unavailable on this platform"
    if len(plan.order) < 2:
        return "single-leg pipeline"
    if limits is not None and (
        limits.max_rows is not None or limits.max_work_units is not None
    ):
        # Row/work budgets need per-row safe points, which live inside one
        # process's pipeline. Deadlines and cancellation ARE supported
        # partitioned: the coordinator enforces them at every wave barrier
        # (and the serial continuation enforces them per-row).
        return "row/work budgets are enforced per-process"
    if fault_plan is not None:
        return "fault injection requires in-process execution"
    if oracle:
        return "invariant oracle shadows a single process"
    if config.switch_at_key_boundary and config.mode.reorders_driving:
        return "switch_at_key_boundary postponement is serial-only"
    try:
        pickle.dumps(plan)
    except Exception:
        return "plan is not picklable"
    return None


def _serial_config(config: AdaptiveConfig) -> AdaptiveConfig:
    return dataclasses.replace(config, workers=1)


class ParallelExecutor:
    """Coordinates one partitioned execution against a database's pool."""

    def __init__(
        self,
        holder: Any,
        catalog: "Catalog",
        plan: PipelinePlan,
        config: AdaptiveConfig,
        obs=None,
        limits=None,
    ) -> None:
        self.holder = holder
        self.catalog = catalog
        self.plan = plan
        self.config = config
        self.obs = obs
        self.limits = limits
        self.tracer = obs.tracer if obs is not None else None
        self._started_at = 0.0
        self._work_floor = 0.0
        self._deadline: float | None = None

    def _check_limits(self, outcome: "ParallelOutcome") -> None:
        """Wave-barrier safe point for deadline and cancellation budgets.

        Raises :class:`BudgetExceeded` with the partial progress merged so
        far (rows, driving rows, work units). Worker partitions run to
        completion between barriers, so enforcement granularity is one
        wave — prompt by construction because limit-armed runs always use
        ``BARRIER_WAVES`` waves.
        """
        limits = self.limits
        if limits is None:
            return
        token = limits.cancellation
        reason = None
        if token is not None and token.cancelled:
            reason = f"query cancelled: {token.reason}"
        elif (
            self._deadline is not None
            and time.perf_counter() > self._deadline
        ):
            reason = (
                f"deadline exceeded ({limits.timeout_seconds * 1000:.0f} ms)"
            )
        if reason is not None:
            raise BudgetExceeded(
                reason,
                rows_emitted=len(outcome.rows),
                work_units=self.catalog.meter.total_units - self._work_floor,
                elapsed_seconds=time.perf_counter() - self._started_at,
                driving_rows=outcome.driving_rows,
            )

    # -- host pipeline for coordinator decisions -----------------------
    def _build_host(self, merged: MonitorSnapshot, consumed_entries: int,
                    total_entries: int, driving_rows: int):
        from repro.executor.pipeline import PipelineExecutor

        host = PipelineExecutor(
            self.plan, self.catalog, _serial_config(self.config)
        )
        host._compile_all_probes(start_position=1)
        driving_leg = host.legs[host.order[0]]
        cursor = driving_leg.open_driving_cursor()
        cursor.partition_entry_count = total_entries
        cursor.entries_yielded = consumed_entries
        host.driving_cursor = cursor
        inject_into_host(host, merged)
        host.driving_rows_total = driving_rows
        return host

    def _decide_switch(self, host) -> tuple[list[str], Any] | None:
        builder = RuntimeModelBuilder(host)
        builder.refresh_join_selectivities()
        provider = builder.build_provider()
        self.catalog.meter.charge_reorder_check()
        new_order = decide_driving_switch(host, provider, self.config)
        if new_order is not None:
            return new_order, provider
        return None

    # -- main entry ----------------------------------------------------
    def execute(self) -> ParallelOutcome | str:
        """Run partitioned; returns an outcome or a fallback reason.

        Serialized per holder: see :func:`_holder_parallel_lock`.
        """
        with _holder_parallel_lock(self.holder):
            return self._execute_locked()

    def _execute_locked(self) -> ParallelOutcome | str:
        config = self.config
        workers = config.workers
        reorders_driving = config.mode.reorders_driving
        limits_armed = self.limits is not None and not self.limits.unlimited
        wave_size = workers * OVERPARTITION
        # Deadline/cancellation budgets are checked at wave barriers, so a
        # limit-armed run always splits into BARRIER_WAVES waves even when
        # driving switches are off — otherwise the whole scan would be one
        # wave and cancellation could not be prompt.
        slices = (
            wave_size * BARRIER_WAVES
            if reorders_driving or limits_armed
            else wave_size
        )
        partitions = compute_partitions(self.plan, self.catalog, slices)
        if partitions is None or len(partitions) < 2:
            return "driving scan too small to partition"
        started_at = time.perf_counter()
        self._started_at = started_at
        self._work_floor = self.catalog.meter.total_units
        if limits_armed and self.limits.timeout_seconds is not None:
            self._deadline = started_at + self.limits.timeout_seconds
        worker_config = dataclasses.replace(
            _serial_config(config), mode=demote_worker_mode(config.mode)
        )
        # Build columnar kernels/sidecars BEFORE (re)forking the pool, so
        # workers inherit the arrays copy-on-write instead of each paying
        # the build. A warm-up that built something bumps the epoch, which
        # forces ensure_pool to re-fork with the arrays in place.
        warm_epoch = getattr(self.holder, "_kernel_warm_epoch", 0)
        if warm_kernel_plan(self.catalog, self.plan, worker_config):
            warm_epoch += 1
            self.holder._kernel_warm_epoch = warm_epoch
        pool = ensure_pool(self.holder, self.catalog, workers, warm_epoch)
        expected_order = tuple(self.plan.order)
        total_entries = sum(p.entry_count or 0 for p in partitions)

        outcome = ParallelOutcome(rows=[], workers_used=workers)
        outcome.order_history.append(expected_order)
        outcome.final_order = expected_order
        snapshots: list[MonitorSnapshot] = []
        consumed_entries = 0
        switch_to: list[str] | None = None

        collect_metrics = (
            self.obs is not None and self.obs.metrics is not None
        )
        for wave_start in range(0, len(partitions), wave_size):
            self._check_limits(outcome)
            wave = partitions[wave_start : wave_start + wave_size]
            tasks = [
                _WorkerTask(
                    self.plan, worker_config, partition, collect_metrics
                )
                for partition in wave
            ]
            results = pool.run(tasks)
            for offset, result in enumerate(results):
                worker_id = wave_start + offset
                outcome.rows.extend(result.rows)
                self.catalog.meter.merge(result.work)
                snapshots.append(result.snapshot)
                outcome.driving_rows += result.driving_rows
                outcome.inner_reorders += result.inner_reorders
                outcome.inner_checks += result.inner_checks
                outcome.partitions_run += 1
                outcome.worker_engines.append(result.engine)
                if outcome.vector_gate is None and result.vector_gate:
                    outcome.vector_gate = result.vector_gate
                for event in result.events:
                    outcome.events.append(
                        dataclasses.replace(event, worker=worker_id)
                    )
                if result.final_order != expected_order:
                    outcome.order_history.append(result.final_order)
                if collect_metrics and result.metrics:
                    for name, labels in result.metrics.items():
                        counter = self.obs.metrics.counter(name)
                        for label, value in labels.items():
                            counter.inc(label, value)
                if self.tracer is not None:
                    self.tracer.event(
                        "partition",
                        worker=worker_id,
                        rows=len(result.rows),
                        driving_rows=result.driving_rows,
                        work_units=result.work.total_units,
                        inner_reorders=result.inner_reorders,
                    )
            # Greedy list schedule (dispatch order, least-loaded bin) models
            # pool.map's chunksize=1 dynamic dequeue across `workers` procs.
            bins = [0.0] * workers
            for result in results:
                heapq.heappush(
                    bins, heapq.heappop(bins) + result.work.total_units
                )
            outcome.critical_path_units += max(bins)
            consumed_entries += sum(p.entry_count or 0 for p in wave)
            remaining = partitions[wave_start + len(wave) :]
            if reorders_driving and remaining:
                merged = merge_snapshots(snapshots)
                host = self._build_host(
                    merged, consumed_entries, total_entries,
                    outcome.driving_rows,
                )
                outcome.driving_checks += 1
                outcome.critical_path_units += REORDER_CHECK_COST
                decision = self._decide_switch(host)
                if self.obs is not None and self.obs.sampler is not None:
                    self.obs.sampler.sample(host)
                if decision is not None:
                    new_order, provider = decision
                    outcome.events.append(
                        AdaptationEvent(
                            kind=EventKind.DRIVING_SWITCH,
                            driving_rows_produced=outcome.driving_rows,
                            old_order=expected_order,
                            new_order=tuple(new_order),
                            estimated_current_cost=cost_of_order(
                                expected_order, provider
                            ),
                            estimated_new_cost=cost_of_order(
                                tuple(new_order), provider
                            ),
                            reason=(
                                "coordinator barrier decision; remaining "
                                "partitions drain to a serial continuation"
                            ),
                        )
                    )
                    switch_to = new_order
                    self._serial_continuation(
                        outcome, merged, remaining, consumed_entries,
                        total_entries,
                    )
                    break
        outcome.wall_seconds = time.perf_counter() - started_at
        if switch_to is None:
            outcome.final_order = (
                outcome.order_history[-1]
                if len(outcome.order_history) > 1
                else expected_order
            )
        return outcome

    def _serial_continuation(
        self,
        outcome: ParallelOutcome,
        merged: MonitorSnapshot,
        remaining: list[ScanPartition],
        consumed_entries: int,
        total_entries: int,
    ) -> None:
        """Drain the unconsumed partitions in-process with the full config.

        The continuation starts at the consumed scan boundary and runs the
        complete adaptive machinery (driving switches included): with the
        merged windows pre-injected, its controller re-derives the
        coordinator's switch decision at its first check point and applies
        it through the standard freeze/positional-predicate path.
        """
        from repro.executor.batch import BatchedPipelineExecutor
        from repro.executor.pipeline import PipelineExecutor

        config = _serial_config(self.config)
        controller = SandboxedController(AdaptationController(config))
        executor_cls = (
            BatchedPipelineExecutor if config.batched else PipelineExecutor
        )
        limits = self.limits
        if limits is not None and self._deadline is not None:
            # The continuation's enforcer restarts its clock; hand it only
            # the time remaining on the original deadline.
            limits = dataclasses.replace(
                limits,
                timeout_seconds=max(
                    self._deadline - time.perf_counter(), 1e-3
                ),
            )
        executor = executor_cls(
            self.plan, self.catalog, config, controller,
            limits=limits, obs=self.obs,
        )
        controller.attach(executor)
        executor.driving_partition = ScanPartition(
            start_after=remaining[0].start_after,
            stop_at=None,
            entry_count=total_entries - consumed_entries,
        )
        inject_into_host(executor, merged)
        executor.driving_rows_total = outcome.driving_rows
        before = self.catalog.meter.snapshot()
        try:
            rows = executor.run_to_completion()
        except BudgetExceeded as error:
            # Fold the partitioned prefix into the continuation's partial
            # progress so the caller sees whole-query numbers.
            raise BudgetExceeded(
                error.reason,
                rows_emitted=len(outcome.rows) + error.rows_emitted,
                work_units=self.catalog.meter.total_units - self._work_floor,
                elapsed_seconds=time.perf_counter() - self._started_at,
                driving_rows=error.driving_rows,
            ) from error
        outcome.critical_path_units += (
            self.catalog.meter - before
        ).total_units
        outcome.rows.extend(rows)
        outcome.driving_rows = executor.driving_rows_total
        outcome.inner_reorders += executor.inner_reorders
        outcome.driving_switches += executor.driving_switches
        outcome.inner_checks += controller.inner_checks
        outcome.driving_checks += controller.driving_checks
        for event in executor.events:
            outcome.events.append(event)
        for order in executor.order_history[1:]:
            outcome.order_history.append(order)
        outcome.final_order = tuple(executor.order)
        outcome.worker_engines.append(executor.engine_used)
        if outcome.vector_gate is None and executor.vector_gate_reason:
            outcome.vector_gate = executor.vector_gate_reason
        if self.tracer is not None:
            self.tracer.event(
                "serial-continuation",
                rows=len(rows),
                driving_rows=executor.driving_rows_total,
                final_order=tuple(executor.order),
            )
