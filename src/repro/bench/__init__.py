"""Benchmark harness: workload runner, experiment drivers, reporting."""

from repro.bench.experiments import (
    PAPER_TABLE1,
    AblationResult,
    OverheadResult,
    ScatterResult,
    Table1Result,
    TemplateRatioResult,
    WindowSweepResult,
    ablation_experiment,
    overhead_experiment,
    scatter_experiment,
    table1_experiment,
    template_ratio_experiment,
    window_sweep_experiment,
)
from repro.bench.reporting import (
    format_scatter_summary,
    format_table,
    format_workload_metrics,
    to_csv,
    write_csv,
)
from repro.bench.runner import (
    WORK_BUCKETS,
    QueryMeasurement,
    WorkloadResult,
    run_workload,
    standard_configs,
    write_json_atomic,
)

__all__ = [
    "PAPER_TABLE1",
    "WORK_BUCKETS",
    "AblationResult",
    "OverheadResult",
    "QueryMeasurement",
    "ScatterResult",
    "Table1Result",
    "TemplateRatioResult",
    "WindowSweepResult",
    "WorkloadResult",
    "ablation_experiment",
    "format_scatter_summary",
    "format_table",
    "format_workload_metrics",
    "overhead_experiment",
    "run_workload",
    "scatter_experiment",
    "standard_configs",
    "table1_experiment",
    "template_ratio_experiment",
    "to_csv",
    "window_sweep_experiment",
    "write_csv",
    "write_json_atomic",
]
