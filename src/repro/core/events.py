"""Adaptation event log: what changed, when, and what the model believed.

Every inner reorder and driving switch is recorded with the cost estimates
that justified it, so a regression ("why did this query switch?") can be
answered from the :class:`~repro.db.QueryResult` alone — the run-time
equivalent of the paper's EXPLAIN story.

A third kind, ``DEGRADED``, records the robustness guarantee in action: the
adaptive layer raised, the sandbox disabled further reordering, and the
query continued under its current (static) order. The event's ``reason``
carries the chained exception context so the "why was adaptation turned
off?" question is also answerable from the result alone.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class EventKind(enum.Enum):
    INNER_REORDER = "inner-reorder"
    DRIVING_SWITCH = "driving-switch"
    # The adaptive layer failed; execution continues without reordering.
    DEGRADED = "degraded"


@dataclass(frozen=True)
class AdaptationEvent:
    """One applied reordering decision (or a degradation of the layer)."""

    kind: EventKind
    # How many rows the driving leg had produced when the decision fired.
    driving_rows_produced: int
    old_order: tuple[str, ...]
    new_order: tuple[str, ...]
    # The run-time cost model's view at decision time (Eq 1, work units).
    estimated_current_cost: float
    estimated_new_cost: float
    # For inner reorders: the depleted-suffix position (1-based pipeline
    # position); 0 for driving switches and degradations.
    position: int = 0
    # For DEGRADED events: why the adaptive layer was disabled (the full
    # chained-exception context).
    reason: str = ""
    # Parallel partitioned execution: index of the worker whose partition
    # run recorded this event; -1 for the coordinator / serial execution.
    worker: int = -1

    @property
    def estimated_benefit(self) -> float:
        """Fraction of the current plan's remaining cost the switch saves.

        Clamped to ``[0, 1]``: a decision whose new plan was estimated
        *costlier* (possible when hysteresis or key-boundary constraints
        forced a switch anyway) reports 0.0 benefit, not a negative one.
        """
        if self.estimated_current_cost <= 0:
            return 0.0
        return max(0.0, 1.0 - self.estimated_new_cost / self.estimated_current_cost)

    def describe(self) -> str:
        if self.kind is EventKind.DEGRADED:
            return (
                f"[{self.kind.value}] after {self.driving_rows_produced} "
                f"driving rows: adaptation disabled, continuing with order "
                f"{','.join(self.old_order)} — {self.reason}"
            )
        arrow = f"{','.join(self.old_order)} -> {','.join(self.new_order)}"
        return (
            f"[{self.kind.value}] after {self.driving_rows_produced} driving "
            f"rows: {arrow} (est. {self.estimated_current_cost:,.0f} -> "
            f"{self.estimated_new_cost:,.0f} work units, "
            f"{self.estimated_benefit * 100:.0f}% predicted benefit)"
        )
