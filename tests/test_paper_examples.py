"""The paper's worked examples, reproduced as executable tests."""

import random

import pytest

from repro import AdaptiveConfig, Database, ReorderMode
from repro.core.ranks import (
    RuntimeModelBuilder,
    measured_combined_local_selectivity,
)
from repro.executor.pipeline import PipelineExecutor


def build_correlated_car_db(owners=2000, seed=1):
    """Example 2's world: make and model are perfectly correlated."""
    rng = random.Random(seed)
    db = Database()
    db.create_table(
        "Owner", [("id", "int"), ("name", "string"), ("country3", "string"), ("city", "string")]
    )
    db.create_table(
        "Car", [("id", "int"), ("ownerid", "int"), ("make", "string"), ("model", "string")]
    )
    model_to_make = {
        "323": "Mazda", "626": "Mazda", "Miata": "Mazda", "Protege": "Mazda",
        "Civic": "Honda", "Accord": "Honda", "CRV": "Honda", "Prelude": "Honda",
        "Caprice": "Chevrolet", "Malibu": "Chevrolet", "Impala": "Chevrolet",
        "Cavalier": "Chevrolet",
        "F150": "Ford", "Focus": "Ford", "Taurus": "Ford", "Escort": "Ford",
        "Corolla": "Toyota", "Camry": "Toyota", "RAV4": "Toyota", "Yaris": "Toyota",
    }
    models = list(model_to_make)
    # '323' is a popular model: uniformity over 20 models underestimates it.
    weights = [8, 2, 1, 1] * 5
    country_city = {"EG": ["Cairo", "Giza"], "US": ["Augusta", "Austin"], "DE": ["Berlin"]}
    owners_rows = []
    for i in range(owners):
        country = rng.choices(list(country_city), weights=[1, 5, 3])[0]
        owners_rows.append((i, f"n{i}", country, rng.choice(country_city[country])))
    db.insert("Owner", owners_rows)
    cars = []
    for i in range(owners):
        model = rng.choices(models, weights=weights)[0]
        cars.append((i, i, model_to_make[model], model))
    db.insert("Car", cars)
    for table, column in [
        ("Owner", "id"), ("Owner", "country3"), ("Owner", "city"),
        ("Car", "ownerid"), ("Car", "make"), ("Car", "model"),
    ]:
        db.create_index(table, column)
    db.analyze()
    return db


class TestExample2Correlation:
    """Sec 4.3.3 / Example 2: the monitor sees through make-model correlation."""

    def test_static_estimate_underestimates_conjunction(self):
        db = build_correlated_car_db()
        plan = db.plan(
            "SELECT c.id FROM Car c WHERE c.make = 'Mazda' AND c.model = '323'"
        )
        estimated = plan.leg("c").estimates.leg_cardinality
        actual = sum(
            1
            for row in db.catalog.table("Car").raw_rows()
            if row[2] == "Mazda" and row[3] == "323"
        )
        # Independence assumption: estimate is several times too small
        # (the paper reports a 13x error on the real DMV data).
        assert estimated < actual / 3

    def test_monitored_conjunction_is_accurate(self):
        db = build_correlated_car_db()
        sql = (
            "SELECT o.name FROM Owner o, Car c "
            "WHERE c.ownerid = o.id AND c.make = 'Mazda' AND c.model = '323'"
        )
        plan = db.plan(sql)
        # Force Owner to drive so Car is monitored as an inner leg.
        order = ("o", "c") if plan.order[0] != "o" else plan.order
        config = AdaptiveConfig(mode=ReorderMode.MONITOR_ONLY)
        executor = PipelineExecutor(plan.with_order(order), db.catalog, config)
        list(executor.rows())
        measured = measured_combined_local_selectivity(executor.legs["c"])
        cars = db.catalog.table("Car").raw_rows()
        actual = sum(1 for r in cars if r[2] == "Mazda" and r[3] == "323") / len(cars)
        # Monitored combined selectivity captures the correlation (Eq 6):
        # it is measured on the conjunction, not multiplied per column.
        assert measured == pytest.approx(actual, rel=0.3)


class TestExample1Flip:
    """Example 1: the optimal inner order flips between make phases."""

    def build_flip_db(self, owners=3000, seed=5):
        rng = random.Random(seed)
        db = Database()
        db.create_table(
            "Owner", [("id", "int"), ("name", "string"), ("country1", "string")]
        )
        db.create_table(
            "Car", [("id", "int"), ("ownerid", "int"), ("make", "string")]
        )
        db.create_table("Demographics", [("ownerid", "int"), ("salary", "int")])
        owners_rows = []
        cars = []
        demo = []
        for i in range(owners):
            # Half the owners drive Chevrolets, half Mercedes; scanned in
            # make order, Chevrolet comes first.
            if i % 2 == 0:
                make = "Chevrolet"
                country = "Germany" if rng.random() < 0.05 else "United States"
                salary = 20_000 + rng.randrange(25_000)   # almost all < 50k
            else:
                make = "Mercedes"
                country = "Germany" if rng.random() < 0.75 else "United States"
                salary = 60_000 + rng.randrange(60_000)   # almost none < 50k
            owners_rows.append((i, f"n{i}", country))
            cars.append((i, i, make))
            demo.append((i, salary))
        db.insert("Owner", owners_rows)
        db.insert("Car", cars)
        db.insert("Demographics", demo)
        for table, column in [
            ("Owner", "id"), ("Car", "ownerid"), ("Car", "make"),
            ("Demographics", "ownerid"), ("Demographics", "salary"),
        ]:
            db.create_index(table, column)
        db.analyze()
        return db

    SQL = (
        "SELECT o.name FROM Owner o, Car c, Demographics d "
        "WHERE c.ownerid = o.id AND o.id = d.ownerid "
        "AND (c.make = 'Chevrolet' OR c.make = 'Mercedes') "
        "AND o.country1 = 'Germany' AND d.salary < 50000"
    )

    def test_inner_order_flips_mid_query(self):
        db = self.build_flip_db()
        plan = db.plan(self.SQL)
        # Drive on the make index so the scan passes through the Chevrolet
        # phase first, then the Mercedes phase (the paper's scenario).
        forced = plan.with_order(
            ("c",) + tuple(a for a in plan.order if a != "c")
        )
        config = AdaptiveConfig(
            mode=ReorderMode.INNER_ONLY, history_window=200, warmup_rows=5
        )
        from repro.core.controller import AdaptationController

        controller = AdaptationController(config)
        executor = PipelineExecutor(forced, db.catalog, config, controller)
        controller.attach(executor)
        rows = executor.run_to_completion()
        static = db.execute(forced, AdaptiveConfig(mode=ReorderMode.NONE))
        assert sorted(rows) == sorted(static.rows)
        # The suffix order of (o, d) must have changed at least once
        # mid-scan: during the Chevrolet phase Owner filters best, during
        # the Mercedes phase Demographics does.
        suffixes = {order[1:] for order in executor.order_history}
        assert len(suffixes) >= 2, executor.order_history

    def test_flip_beats_both_static_inner_orders(self):
        db = self.build_flip_db()
        plan = db.plan(self.SQL)
        static_cfg = AdaptiveConfig(mode=ReorderMode.NONE)
        order_a = ("c", "o", "d")
        order_b = ("c", "d", "o")
        cost_a = db.execute(plan.with_order(order_a), static_cfg).stats.total_work
        cost_b = db.execute(plan.with_order(order_b), static_cfg).stats.total_work
        adaptive = db.execute(
            plan.with_order(order_a),
            AdaptiveConfig(
                mode=ReorderMode.INNER_ONLY, history_window=200, warmup_rows=5
            ),
        )
        # Adaptivity must at least approach the better static order, from
        # the worse starting point, and ideally beat both (Example 1: "any
        # fixed order ... would be suboptimal for the entire data set").
        assert adaptive.stats.total_work < max(cost_a, cost_b)
        assert adaptive.stats.total_work < min(cost_a, cost_b) * 1.15


class TestExample3AccessPath:
    """Sec 5.3 / Example 3: a skewed country3 makes the chosen index bad."""

    def test_country3_index_scans_a_third_of_the_table(self, mini_dmv):
        db, _ = mini_dmv
        owner = db.catalog.table("Owner")
        index = db.catalog.index_on("Owner", "country3")
        us_fraction = index.count_range("US", "US") / len(owner)
        # "almost one third of the table would be scanned"
        assert 0.2 < us_fraction < 0.45

    def test_city_index_is_far_more_selective(self, mini_dmv):
        db, _ = mini_dmv
        owner = db.catalog.table("Owner")
        city_index = db.catalog.index_on("Owner", "city")
        country_index = db.catalog.index_on("Owner", "country3")
        city = city_index.count_range("Augusta", "Augusta")
        country = country_index.count_range("US", "US")
        assert city * 4 < country
