"""Deterministic fault injection and transient-fault retry."""

import pytest

from repro import AdaptiveConfig, HashProbePolicy, ReorderMode
from repro.errors import (
    PermanentStorageError,
    StorageError,
    TransientStorageError,
)
from repro.robustness.faults import (
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    call_with_retry,
)

from tests.conftest import build_three_table_db

THREE_TABLE_SQL = (
    "SELECT o.name, c.make, d.salary FROM Owner o, Car c, Demo d "
    "WHERE c.ownerid = o.id AND d.ownerid = o.id AND o.country = 'DE'"
)


class TestFaultSpec:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec(site="disk-sector", nth_call=1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="fault kind"):
            FaultSpec(site="index-lookup", kind="flaky", nth_call=1)

    def test_exactly_one_trigger(self):
        with pytest.raises(ValueError, match="exactly one"):
            FaultSpec(site="index-lookup")
        with pytest.raises(ValueError, match="exactly one"):
            FaultSpec(site="index-lookup", nth_call=1, probability=0.5)

    def test_bounds(self):
        with pytest.raises(ValueError, match="nth_call"):
            FaultSpec(site="index-lookup", nth_call=0)
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(site="index-lookup", probability=1.5)
        with pytest.raises(ValueError, match="max_fires"):
            FaultSpec(site="index-lookup", nth_call=1, max_fires=0)


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(site="index-lookup", kind="transient", nth_call=3),
                FaultSpec(site="controller", kind="permanent", probability=0.1),
            ),
            seed=99,
        )
        restored = FaultPlan.from_json(plan.to_json())
        assert restored == plan

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            FaultPlan.from_json("not json")
        with pytest.raises(ValueError, match="JSON object"):
            FaultPlan.from_json("[1, 2]")
        with pytest.raises(ValueError, match="unknown fault-plan keys"):
            FaultPlan.from_json('{"faults": [], "extra": 1}')
        with pytest.raises(ValueError, match="unknown fault keys"):
            FaultPlan.from_json(
                '{"faults": [{"site": "index-lookup", "nth": 1}]}'
            )


class TestFaultInjector:
    def test_nth_call_fires_exactly_once(self):
        plan = FaultPlan(
            specs=(FaultSpec(site="index-lookup", nth_call=3),), seed=0
        )
        injector = plan.build()
        injector.fire("index-lookup")
        injector.fire("index-lookup")
        with pytest.raises(TransientStorageError, match="call #3"):
            injector.fire("index-lookup")
        for _ in range(10):  # nth-call specs default to a single fire
            injector.fire("index-lookup")
        assert injector.fired["index-lookup"] == 1

    def test_sites_are_independent(self):
        plan = FaultPlan(
            specs=(FaultSpec(site="cursor-advance", nth_call=1),), seed=0
        )
        injector = plan.build()
        injector.fire("index-lookup")  # different site: no fault
        with pytest.raises(TransientStorageError):
            injector.fire("cursor-advance")

    def test_permanent_kind_raises_permanent_error(self):
        plan = FaultPlan(
            specs=(FaultSpec(site="controller", kind="permanent", nth_call=1),),
        )
        with pytest.raises(PermanentStorageError):
            plan.build().fire("controller")

    def test_probability_is_deterministic_per_seed(self):
        plan = FaultPlan(
            specs=(FaultSpec(site="hash-probe", probability=0.3),), seed=1234
        )

        def fire_pattern() -> list[bool]:
            injector = plan.build()
            pattern = []
            for _ in range(50):
                try:
                    injector.fire("hash-probe")
                    pattern.append(False)
                except TransientStorageError:
                    pattern.append(True)
            return pattern

        first, second = fire_pattern(), fire_pattern()
        assert first == second
        assert any(first), "probability 0.3 over 50 ops should fire"

    def test_max_fires_bounds_probabilistic_specs(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(site="monitor", probability=1.0, max_fires=2),
            ),
        )
        injector = plan.build()
        for _ in range(2):
            with pytest.raises(TransientStorageError):
                injector.fire("monitor")
        injector.fire("monitor")  # budget spent: no more faults
        assert injector.total_fired == 2


class TestRetry:
    def test_delay_doubles_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.25, sleep=lambda _: None)
        assert policy.delay_for(1) == pytest.approx(0.1)
        assert policy.delay_for(2) == pytest.approx(0.2)
        assert policy.delay_for(3) == pytest.approx(0.25)

    def test_succeeds_after_transient_failures(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientStorageError("blip")
            return "ok"

        slept = []
        policy = RetryPolicy(max_attempts=4, base_delay=0.01, sleep=slept.append)
        assert call_with_retry(flaky, policy) == "ok"
        assert len(attempts) == 3
        assert slept == [pytest.approx(0.01), pytest.approx(0.02)]

    def test_exhaustion_chains_the_last_fault(self):
        def always_failing():
            raise TransientStorageError("blip")

        policy = RetryPolicy(max_attempts=3, base_delay=0.0, sleep=lambda _: None)
        with pytest.raises(StorageError, match="3 attempts") as excinfo:
            call_with_retry(always_failing, policy)
        assert isinstance(excinfo.value.__cause__, TransientStorageError)

    def test_permanent_faults_pass_through(self):
        def broken():
            raise PermanentStorageError("dead")

        with pytest.raises(PermanentStorageError):
            call_with_retry(broken, RetryPolicy(sleep=lambda _: None))


class TestStorageIntegration:
    """Faults fire inside real storage operations during real queries."""

    def test_transient_index_fault_is_retried_transparently(self):
        db = build_three_table_db()
        clean = db.execute(THREE_TABLE_SQL, AdaptiveConfig(mode=ReorderMode.NONE))
        injector = FaultPlan(
            specs=(
                FaultSpec(site="index-lookup", kind="transient", nth_call=2),
                FaultSpec(site="cursor-advance", kind="transient", nth_call=4),
            ),
        ).build()
        faulty = db.execute(
            THREE_TABLE_SQL,
            AdaptiveConfig(mode=ReorderMode.NONE),
            fault_plan=injector,
        )
        assert sorted(faulty.rows) == sorted(clean.rows)
        assert injector.fired["index-lookup"] == 1
        assert injector.fired["cursor-advance"] == 1

    def test_permanent_index_fault_aborts_the_query(self):
        db = build_three_table_db()
        with pytest.raises(PermanentStorageError, match="index-lookup"):
            db.execute(
                THREE_TABLE_SQL,
                AdaptiveConfig(mode=ReorderMode.NONE),
                fault_plan=FaultPlan(
                    specs=(
                        FaultSpec(
                            site="index-lookup", kind="permanent", nth_call=1
                        ),
                    ),
                ),
            )

    def test_faults_are_disarmed_after_execution(self):
        db = build_three_table_db()
        with pytest.raises(PermanentStorageError):
            db.execute(
                THREE_TABLE_SQL,
                AdaptiveConfig(mode=ReorderMode.NONE),
                fault_plan=FaultPlan(
                    specs=(
                        FaultSpec(
                            site="cursor-advance", kind="permanent", nth_call=1
                        ),
                    ),
                ),
            )
        assert db.catalog.faults is None
        # The next execution runs clean.
        result = db.execute(THREE_TABLE_SQL, AdaptiveConfig(mode=ReorderMode.NONE))
        assert len(result.rows) > 0

    def test_hash_probe_fault_site(self):
        db = build_three_table_db()
        injector = FaultPlan(
            specs=(FaultSpec(site="hash-probe", kind="transient", nth_call=1),),
        ).build()
        config = AdaptiveConfig(
            mode=ReorderMode.NONE, hash_probe_policy=HashProbePolicy.ALWAYS
        )
        clean = db.execute(THREE_TABLE_SQL, AdaptiveConfig(mode=ReorderMode.NONE))
        faulty = db.execute(THREE_TABLE_SQL, config, fault_plan=injector)
        assert sorted(faulty.rows) == sorted(clean.rows)
        assert injector.fired["hash-probe"] == 1
