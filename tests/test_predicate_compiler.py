"""Property tests: the predicate mini-compiler vs the interpreter.

``compile_row_test`` must be observably identical to ``bind`` — same
booleans, same NULL handling, same short-circuit result on every row —
for every tree shape it claims to support, and must *refuse* (return
None) anything else. ``vector_spec`` + ``ColumnarTable.mask_for_spec``
must reproduce the interpreter's verdict for whole columns. Both are
checked on randomized predicate trees over randomized data: the seeds
are fixed, so failures replay deterministically.
"""

from __future__ import annotations

import random

import pytest

from repro.db import Database
from repro.storage.columnar import _np as HAVE_NUMPY
from repro.query.predicates import (
    Between,
    Comparison,
    Disjunction,
    InList,
    IsNull,
    LocalPredicate,
    Op,
)
from repro.storage.compiled import compile_row_test, vector_spec
from repro.storage.schema import Column, TableSchema
from repro.storage.types import ColumnType

SCHEMA = TableSchema(
    "t",
    (
        Column("a", ColumnType.INT),
        Column("b", ColumnType.FLOAT),
        Column("s", ColumnType.STRING),
    ),
)

COMPARE_OPS = (Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE)
STRINGS = ("alpha", "beta", "gamma", "delta", "")


def random_value(rng: random.Random, column: str):
    if column == "s":
        return rng.choice(STRINGS)
    if column == "b":
        return round(rng.uniform(-50.0, 50.0), 3)
    return rng.randint(-20, 20)


def random_leaf(rng: random.Random) -> LocalPredicate:
    column = rng.choice(("a", "b", "s"))
    shape = rng.randrange(4)
    if shape == 0:
        return Comparison(column, rng.choice(COMPARE_OPS), random_value(rng, column))
    if shape == 1:
        low, high = sorted(
            (random_value(rng, column), random_value(rng, column))
        )
        return Between(column, low, high)
    if shape == 2:
        count = rng.randint(1, 4)
        values = [random_value(rng, column) for _ in range(count)]
        if rng.random() < 0.3:
            values.append(None)  # NULL can be an IN-list member
        return InList(column, values)
    return IsNull(column, negated=rng.random() < 0.5)


def random_tree(rng: random.Random) -> LocalPredicate:
    if rng.random() < 0.4:
        terms = [random_leaf(rng) for _ in range(rng.randint(2, 4))]
        return Disjunction(terms)
    return random_leaf(rng)


def random_row(rng: random.Random) -> tuple:
    a = None if rng.random() < 0.15 else rng.randint(-20, 20)
    b = None if rng.random() < 0.15 else round(rng.uniform(-50.0, 50.0), 3)
    s = None if rng.random() < 0.15 else rng.choice(STRINGS)
    return (a, b, s)


@pytest.mark.parametrize("seed", range(20))
def test_compiled_tree_matches_interpreter(seed):
    rng = random.Random(987_000 + seed)
    for _ in range(25):
        predicate = random_tree(rng)
        compiled = compile_row_test(predicate, SCHEMA)
        assert compiled is not None, f"supported shape refused: {predicate}"
        interpreted = predicate.bind(SCHEMA)
        for _ in range(40):
            row = random_row(rng)
            assert compiled(row) == interpreted(row), (
                f"{predicate} on {row}: compiled={compiled(row)} "
                f"interpreter={interpreted(row)} ({compiled.source})"
            )


def test_compiler_refuses_unknown_shapes():
    class Custom(Comparison):
        """A subclass may override bind(); the compiler must not guess."""

    predicate = Custom("a", Op.EQ, 1)
    assert compile_row_test(predicate, SCHEMA) is None
    assert vector_spec(predicate, SCHEMA) is None
    inside = Disjunction([predicate, Comparison("a", Op.EQ, 2)])
    assert compile_row_test(inside, SCHEMA) is None
    assert vector_spec(inside, SCHEMA) is None


def test_compiled_incomparable_types_raise_like_interpreter():
    predicate = Comparison("a", Op.LT, "not-a-number")
    compiled = compile_row_test(predicate, SCHEMA)
    interpreted = predicate.bind(SCHEMA)
    row = (3, 1.0, "x")
    with pytest.raises(TypeError):
        interpreted(row)
    with pytest.raises(TypeError):
        compiled(row)
    # NULL short-circuits before the comparison in both.
    null_row = (None, 1.0, "x")
    assert compiled(null_row) is interpreted(null_row) is False


@pytest.fixture(scope="module")
def columnar_table():
    rng = random.Random(424_242)
    db = Database(backend="columnar")
    db.create_table("t", [("a", "int"), ("b", "float"), ("s", "string")])
    rows = [random_row(rng) for _ in range(300)]
    db.insert("t", rows)
    yield db.catalog.table("t"), rows
    db.close()


@pytest.mark.parametrize("seed", range(10))
def test_mask_for_spec_matches_interpreter(columnar_table, seed):
    table, rows = columnar_table
    rng = random.Random(31_337 + seed)
    vectorized = 0
    for _ in range(25):
        predicate = random_tree(rng)
        spec = vector_spec(predicate, SCHEMA)
        assert spec is not None, f"supported shape refused: {predicate}"
        mask = table.mask_for_spec(spec)
        if mask is None:
            continue  # legal fallback (mixed types, no numpy, ...)
        vectorized += 1
        interpreted = predicate.bind(SCHEMA)
        expected = [interpreted(row) for row in rows]
        assert [bool(bit) for bit in mask] == expected, f"{predicate}"
    if HAVE_NUMPY is not None:
        assert vectorized > 0, "no predicate was vectorized at all"
