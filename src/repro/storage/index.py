"""Ordered secondary indexes.

A :class:`SortedIndex` maintains (key, rid) entries sorted by key, then RID —
the same order a B-tree on a single column exposes. The executor uses it for

* equality probes during indexed nested-loop joins,
* range scans that drive a pipeline (the "index scan" access path), and
* the driving-leg positional order (key, rid) the paper exploits for
  duplicate prevention when switching driving tables (Sec 4.2).

``None`` keys are not indexed, matching SQL semantics where ``NULL`` never
satisfies an equality or range predicate.

Work accounting: each probe charges one ``INDEX_DESCEND`` plus one
``INDEX_ENTRY`` per entry touched, so plans that probe fewer entries are
deterministically cheaper.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator

from repro.errors import StorageError
from repro.storage.counters import WorkMeter
from repro.storage.table import HeapTable

# Sentinels that compare below/above every RID (RIDs are non-negative ints).
_RID_LOW = -1
_RID_HIGH = float("inf")

Entry = tuple[Any, Any]  # (key, rid)


class SortedIndex:
    """A single-column ordered index over a :class:`HeapTable`."""

    def __init__(self, name: str, table: HeapTable, column: str) -> None:
        self.name = name
        self.table = table
        self.column = column
        self._column_pos = table.schema.position_of(column)
        self._entries: list[Entry] = []
        self._built_upto = 0  # number of heap rows reflected in the index
        self.rebuild()

    @property
    def meter(self) -> WorkMeter:
        return self.table.meter

    def __len__(self) -> int:
        return len(self._entries)

    def rebuild(self) -> None:
        """(Re)build the index from the current heap contents."""
        entries = []
        for rid, row in enumerate(self.table.raw_rows()):
            key = row[self._column_pos]
            if key is not None:
                entries.append((key, rid))
        entries.sort()
        self._entries = entries
        self._built_upto = len(self.table)

    def refresh(self) -> None:
        """Fold rows appended since the last build into the index."""
        heap_size = len(self.table)
        if self._built_upto == heap_size:
            return
        rows = self.table.raw_rows()
        for rid in range(self._built_upto, heap_size):
            key = rows[rid][self._column_pos]
            if key is not None:
                bisect.insort(self._entries, (key, rid))
        self._built_upto = heap_size

    def _check_fresh(self) -> None:
        if self._built_upto != len(self.table):
            raise StorageError(
                f"index {self.name!r} is stale: call refresh() after inserts"
            )

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    def lookup_rids(self, key: Any) -> list[int]:
        """Return RIDs whose indexed column equals *key*, charging work."""
        faults = self.table.faults
        if faults is not None:
            # Consulted before any charge or state change, so a transient
            # fault leaves the lookup safely retryable.
            faults.fire("index-lookup")
        self._check_fresh()
        self.meter.charge_index_descend()
        if key is None:
            return []
        lo = bisect.bisect_left(self._entries, (key, _RID_LOW))
        hi = bisect.bisect_right(self._entries, (key, _RID_HIGH))
        self.meter.charge_index_entries(max(hi - lo, 1))
        return [rid for _, rid in self._entries[lo:hi]]

    def scan_range(
        self,
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
        start_after: Entry | None = None,
    ) -> Iterator[Entry]:
        """Yield (key, rid) entries with ``low <= key <= high`` in order.

        *start_after*, when given, skips every entry at or before that
        (key, rid) position — this is how a resumed driving-leg scan and the
        positional predicates avoid re-reading processed rows.

        Bounds of ``None`` mean unbounded on that side.
        """
        self._check_fresh()
        self.meter.charge_index_descend()
        if low is None:
            lo = 0
        elif low_inclusive:
            lo = bisect.bisect_left(self._entries, (low, _RID_LOW))
        else:
            lo = bisect.bisect_right(self._entries, (low, _RID_HIGH))
        if start_after is not None:
            lo = max(lo, bisect.bisect_right(self._entries, start_after))
        if high is None:
            hi = len(self._entries)
        elif high_inclusive:
            hi = bisect.bisect_right(self._entries, (high, _RID_HIGH))
        else:
            hi = bisect.bisect_left(self._entries, (high, _RID_LOW))
        for position in range(lo, hi):
            self.meter.charge_index_entries(1)
            yield self._entries[position]

    def count_range(
        self,
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> int:
        """Entry count in a key range, without charging work (statistics)."""
        if low is None:
            lo = 0
        elif low_inclusive:
            lo = bisect.bisect_left(self._entries, (low, _RID_LOW))
        else:
            lo = bisect.bisect_right(self._entries, (low, _RID_HIGH))
        if high is None:
            hi = len(self._entries)
        elif high_inclusive:
            hi = bisect.bisect_right(self._entries, (high, _RID_HIGH))
        else:
            hi = bisect.bisect_left(self._entries, (high, _RID_LOW))
        return max(hi - lo, 0)

    def count_range_after(
        self,
        after: Entry | None,
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> int:
        """Entries in a key range strictly after position *after* (uncharged).

        This is the index-metadata read the adaptation controller uses to
        estimate the *remaining* work of a partially consumed driving scan —
        the equivalent of a B-tree's key-range cardinality estimate.
        """
        if low is None:
            lo = 0
        elif low_inclusive:
            lo = bisect.bisect_left(self._entries, (low, _RID_LOW))
        else:
            lo = bisect.bisect_right(self._entries, (low, _RID_HIGH))
        if after is not None:
            lo = max(lo, bisect.bisect_right(self._entries, after))
        if high is None:
            hi = len(self._entries)
        elif high_inclusive:
            hi = bisect.bisect_right(self._entries, (high, _RID_HIGH))
        else:
            hi = bisect.bisect_left(self._entries, (high, _RID_LOW))
        return max(hi - lo, 0)

    def distinct_key_count(self) -> int:
        """Number of distinct keys (statistics; uncharged)."""
        count = 0
        previous = object()
        for key, _ in self._entries:
            if key != previous:
                count += 1
                previous = key
        return count
