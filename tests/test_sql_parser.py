"""Unit tests for the SQL parser."""

import pytest

from repro.errors import SqlSyntaxError
from repro.query.predicates import Between, Comparison, Disjunction, InList, Op
from repro.query.sql.parser import parse_sql


class TestSelectFrom:
    def test_simple_select(self):
        spec = parse_sql("SELECT o.name FROM Owner o")
        assert spec.tables == {"o": "Owner"}
        assert [str(col) for col in spec.projection] == ["o.name"]

    def test_select_star(self):
        spec = parse_sql("SELECT * FROM Owner o")
        assert spec.projection == ()

    def test_alias_with_as(self):
        spec = parse_sql("SELECT x.name FROM Owner AS x")
        assert spec.tables == {"x": "Owner"}

    def test_table_without_alias(self):
        spec = parse_sql("SELECT name FROM Owner")
        assert spec.tables == {"Owner": "Owner"}
        assert spec.projection[0].alias == "Owner"

    def test_multiple_tables(self):
        spec = parse_sql("SELECT o.name FROM Owner o, Car c")
        assert set(spec.tables) == {"o", "c"}

    def test_duplicate_alias(self):
        with pytest.raises(SqlSyntaxError, match="duplicate"):
            parse_sql("SELECT o.a FROM Owner o, Car o")

    def test_unqualified_column_multi_table(self):
        with pytest.raises(SqlSyntaxError, match="alias-qualified"):
            parse_sql("SELECT name FROM Owner o, Car c")


class TestWhere:
    def test_comparison(self):
        spec = parse_sql("SELECT o.name FROM Owner o WHERE o.age > 30")
        (predicate,) = spec.locals_of("o")
        assert predicate == Comparison("age", Op.GT, 30)

    def test_string_literal(self):
        spec = parse_sql("SELECT o.name FROM Owner o WHERE o.city = 'Cairo'")
        (predicate,) = spec.locals_of("o")
        assert predicate.value == "Cairo"

    def test_between(self):
        spec = parse_sql(
            "SELECT o.name FROM Owner o WHERE o.age BETWEEN 20 AND 30"
        )
        assert spec.locals_of("o") == (Between("age", 20, 30),)

    def test_in_list(self):
        spec = parse_sql(
            "SELECT o.name FROM Owner o WHERE o.city IN ('A', 'B')"
        )
        assert spec.locals_of("o") == (InList("city", ("A", "B")),)

    def test_join_predicate(self):
        spec = parse_sql(
            "SELECT o.name FROM Owner o, Car c WHERE c.ownerid = o.id"
        )
        (join,) = spec.join_predicates
        assert join.column_of("c") == "ownerid"
        assert join.column_of("o") == "id"

    def test_conjunction_mixes_joins_and_locals(self):
        spec = parse_sql(
            "SELECT o.name FROM Owner o, Car c "
            "WHERE c.ownerid = o.id AND c.make = 'Mazda' AND o.age < 50"
        )
        assert len(spec.join_predicates) == 1
        assert len(spec.locals_of("c")) == 1
        assert len(spec.locals_of("o")) == 1

    def test_or_group(self):
        spec = parse_sql(
            "SELECT c.id FROM Car c WHERE (c.make = 'A' OR c.make = 'B')"
        )
        (predicate,) = spec.locals_of("c")
        assert isinstance(predicate, Disjunction)
        assert len(predicate.terms) == 2

    def test_or_group_three_terms(self):
        spec = parse_sql(
            "SELECT c.id FROM Car c "
            "WHERE (c.make = 'A' OR c.make = 'B' OR c.year > 2000)"
        )
        (predicate,) = spec.locals_of("c")
        assert len(predicate.terms) == 3

    def test_parenthesized_conjunction_flattens(self):
        spec = parse_sql(
            "SELECT c.id FROM Car c WHERE (c.make = 'A' AND c.year > 2000)"
        )
        assert len(spec.locals_of("c")) == 2

    def test_parenthesized_single_term(self):
        spec = parse_sql("SELECT c.id FROM Car c WHERE (c.make = 'A')")
        assert len(spec.locals_of("c")) == 1


class TestErrors:
    def test_or_across_tables_rejected(self):
        with pytest.raises(SqlSyntaxError, match="single table"):
            parse_sql(
                "SELECT o.id FROM Owner o, Car c "
                "WHERE (o.age > 5 OR c.year > 2000)"
            )

    def test_join_inside_or_rejected(self):
        with pytest.raises(SqlSyntaxError, match="OR groups"):
            parse_sql(
                "SELECT o.id FROM Owner o, Car c "
                "WHERE (c.ownerid = o.id OR c.year > 2000)"
            )

    def test_non_equality_join_rejected(self):
        with pytest.raises(SqlSyntaxError, match="equality"):
            parse_sql("SELECT o.id FROM Owner o, Car c WHERE c.ownerid < o.id")

    def test_not_in_rejected(self):
        with pytest.raises(SqlSyntaxError, match="NOT IN"):
            parse_sql("SELECT o.id FROM Owner o WHERE o.age NOT IN (1, 2)")

    def test_same_table_column_comparison_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT o.id FROM Owner o WHERE o.a = o.b")

    def test_missing_from(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT o.id")

    def test_trailing_garbage(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT o.id FROM Owner o extra")

    def test_missing_literal(self):
        with pytest.raises(SqlSyntaxError, match="literal"):
            parse_sql("SELECT o.id FROM Owner o WHERE o.age >")

    def test_unknown_alias_in_where(self):
        with pytest.raises(SqlSyntaxError, match="unknown table alias"):
            parse_sql("SELECT o.id FROM Owner o WHERE z.age > 5")


class TestRoundTrip:
    def test_paper_example_1(self):
        spec = parse_sql(
            "SELECT o.name, a.driver FROM Owner o, Car c, Demographics d, "
            "Accidents a WHERE c.ownerid = o.id AND o.id = d.ownerid AND "
            "c.id = a.carid AND (c.make='Chevrolet' OR c.make='Mercedes') "
            "AND o.country1 = 'Germany' AND d.salary < 50000"
        )
        assert len(spec.tables) == 4
        assert len(spec.join_predicates) == 3
        assert isinstance(spec.locals_of("c")[0], Disjunction)
        assert spec.join_graph().is_connected()
