"""Adaptation sandboxing and debug-mode invariant oracles."""

from types import SimpleNamespace

import pytest

from repro import (
    AdaptiveConfig,
    ExecutionError,
    OracleViolation,
    PermanentStorageError,
    ReorderMode,
)
from repro.core.events import EventKind
from repro.executor.pipeline import PipelineExecutor
from repro.robustness.faults import FaultPlan, FaultSpec
from repro.robustness.guard import SandboxedController, describe_failure
from repro.robustness.oracle import InvariantOracle

from tests.conftest import build_three_table_db

SQL = (
    "SELECT o.name, c.make, d.salary FROM Owner o, Car c, Demo d "
    "WHERE c.ownerid = o.id AND d.ownerid = o.id AND o.country = 'DE'"
)

# Check aggressively so injected controller faults trigger early.
AGGRESSIVE = AdaptiveConfig(mode=ReorderMode.BOTH, check_frequency=2)

CONTROLLER_FAULT = FaultPlan(
    specs=(FaultSpec(site="controller", kind="permanent", nth_call=1),),
)


def test_describe_failure_flattens_the_cause_chain():
    try:
        try:
            raise ValueError("root")
        except ValueError as exc:
            raise RuntimeError("wrapper") from exc
    except RuntimeError as exc:
        text = describe_failure(exc)
    assert text == "RuntimeError: wrapper <- ValueError: root"


class TestSandbox:
    def test_controller_fault_degrades_instead_of_aborting(self):
        db = build_three_table_db()
        reference = db.execute(SQL, AdaptiveConfig(mode=ReorderMode.NONE))
        injector = CONTROLLER_FAULT.build()
        result = db.execute(SQL, AGGRESSIVE, fault_plan=injector)
        assert sorted(result.rows) == sorted(reference.rows)
        assert injector.fired["controller"] == 1
        assert result.stats.degraded
        degraded = [
            event
            for event in result.stats.events
            if event.kind is EventKind.DEGRADED
        ]
        assert len(degraded) == 1
        # The reason carries both the controller context and the root fault.
        assert "check failed" in degraded[0].reason
        assert "injected permanent fault at 'controller'" in degraded[0].reason
        assert "[degraded]" in degraded[0].describe()

    def test_degraded_controller_stays_disabled(self):
        db = build_three_table_db()
        injector = CONTROLLER_FAULT.build()
        result = db.execute(SQL, AGGRESSIVE, fault_plan=injector)
        # After the first failure the sandbox stops calling the controller,
        # so the (permanently armed) fault site is never consulted again
        # and no further adaptation happens.
        assert injector.fired["controller"] == 1
        post_degrade = [
            event
            for event in result.stats.events
            if event.kind is not EventKind.DEGRADED
            and event.driving_rows_produced
            > result.stats.events[-1].driving_rows_produced
        ]
        assert post_degrade == []

    def test_sandbox_off_propagates_with_context(self):
        db = build_three_table_db()
        with pytest.raises(ExecutionError, match="check failed") as excinfo:
            db.execute(
                SQL, AGGRESSIVE, fault_plan=CONTROLLER_FAULT, sandbox=False
            )
        assert isinstance(excinfo.value.__cause__, PermanentStorageError)

    def test_monitor_fault_degrades_monitoring_only(self):
        db = build_three_table_db()
        reference = db.execute(SQL, AdaptiveConfig(mode=ReorderMode.NONE))
        injector = FaultPlan(
            specs=(FaultSpec(site="monitor", kind="permanent", nth_call=1),),
        ).build()
        result = db.execute(SQL, AGGRESSIVE, fault_plan=injector)
        assert sorted(result.rows) == sorted(reference.rows)
        assert injector.fired["monitor"] == 1
        reasons = [
            event.reason
            for event in result.stats.events
            if event.kind is EventKind.DEGRADED
        ]
        assert any("monitor failure on leg" in reason for reason in reasons)

    def test_mid_mutation_failure_is_not_absorbed(self):
        class _Saboteur:
            """Mutates the pipeline order and then dies mid-hook."""

            inner_checks = 0
            driving_checks = 0

            def attach(self, pipeline):
                self.pipeline = pipeline

            def on_suffix_depleted(self, position):
                self.pipeline.order.reverse()
                raise RuntimeError("boom after mutation")

            def on_pipeline_depleted(self):
                return False

        db = build_three_table_db()
        plan = db.plan(SQL)
        sandboxed = SandboxedController(_Saboteur())
        executor = PipelineExecutor(plan, db.catalog, AGGRESSIVE, sandboxed)
        sandboxed.attach(executor)
        with pytest.raises(ExecutionError, match="mid-mutation") as excinfo:
            executor.run_to_completion()
        assert isinstance(excinfo.value.__cause__, RuntimeError)


class TestOracleUnits:
    def test_duplicate_rid_tuple_raises(self):
        oracle = InvariantOracle()
        oracle.record_emit({"o": 1, "c": 7})
        oracle.record_emit({"o": 1, "c": 8})
        with pytest.raises(OracleViolation, match="duplicate output row"):
            oracle.record_emit({"c": 7, "o": 1})  # order-insensitive

    def test_diff_against(self):
        left, right = InvariantOracle(), InvariantOracle()
        left.record_emit({"o": 1})
        right.record_emit({"o": 1})
        assert left.diff_against(right) is None
        left.record_emit({"o": 2})
        right.record_emit({"o": 3})
        diff = left.diff_against(right)
        assert "1 unexpected row(s)" in diff
        assert "1 missing row(s)" in diff

    def test_inner_reorder_requires_depleted_suffix(self):
        oracle = InvariantOracle()
        pipeline = SimpleNamespace(depleted_from=None)
        with pytest.raises(OracleViolation, match="outside a depleted state"):
            oracle.check_inner_reorder(pipeline, 1, ["c", "d"])
        pipeline.depleted_from = 2
        with pytest.raises(OracleViolation, match="outside a depleted state"):
            oracle.check_inner_reorder(pipeline, 1, ["c", "d"])
        oracle.check_inner_reorder(
            SimpleNamespace(depleted_from=1), 1, ["c", "d"]
        )
        with pytest.raises(OracleViolation, match="driving leg"):
            oracle.check_inner_reorder(
                SimpleNamespace(depleted_from=0), 0, ["c", "d"]
            )

    def test_driving_switch_requires_fully_depleted_pipeline(self):
        oracle = InvariantOracle()
        with pytest.raises(OracleViolation, match="not fully depleted"):
            oracle.check_driving_switch(SimpleNamespace(depleted_from=1))
        oracle.check_driving_switch(SimpleNamespace(depleted_from=0))
        assert oracle.driving_switches_checked == 2


class TestOracleEndToEnd:
    def test_adaptive_run_matches_static_rid_multiset(self):
        db = build_three_table_db()
        reference = db.execute(
            SQL, AdaptiveConfig(mode=ReorderMode.NONE), oracle=True
        )
        adaptive = db.execute(SQL, AGGRESSIVE, oracle=True)
        assert adaptive.oracle is not None
        assert adaptive.oracle.emits == len(adaptive.rows)
        assert adaptive.oracle.diff_against(reference.oracle) is None

    def test_oracle_checks_every_applied_mutation(self):
        db = build_three_table_db()
        result = db.execute(SQL, AGGRESSIVE, oracle=True)
        oracle = result.oracle
        assert oracle.inner_reorders_checked == result.stats.inner_reorders
        assert oracle.driving_switches_checked == result.stats.driving_switches

    def test_oracle_and_sandbox_compose(self):
        db = build_three_table_db()
        reference = db.execute(
            SQL, AdaptiveConfig(mode=ReorderMode.NONE), oracle=True
        )
        result = db.execute(
            SQL, AGGRESSIVE, fault_plan=CONTROLLER_FAULT, oracle=True
        )
        assert result.stats.degraded
        assert result.oracle.diff_against(reference.oracle) is None
