"""Adaptive reordering must never change query answers.

Two attack angles:

* run every reorder mode (and aggressive configurations) and compare
  against the static result and the brute-force reference evaluator;
* drive the pipeline with a *scripted* controller that performs random
  (but valid) inner reorders and driving switches at every safe point —
  far more switching than the cost-based controller would ever do — and
  verify the result multiset is exactly preserved (the DESIGN.md slab
  invariant, fuzzed).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AdaptiveConfig, ReorderMode
from repro.executor.pipeline import PipelineExecutor
from repro.query.query import QuerySpec

from tests.conftest import build_three_table_db, reference_join

QUERIES = [
    "SELECT o.name, c.make FROM Owner o, Car c WHERE c.ownerid = o.id "
    "AND c.make = 'Rare' AND o.country = 'DE'",
    "SELECT o.name FROM Owner o, Car c, Demo d "
    "WHERE c.ownerid = o.id AND o.id = d.ownerid "
    "AND (c.make = 'A' OR c.make = 'Rare') AND d.salary < 60000",
    "SELECT o.name, d.salary FROM Owner o, Car c, Demo d "
    "WHERE c.ownerid = o.id AND o.id = d.ownerid AND o.country = 'US'",
    "SELECT c.id, d.salary FROM Owner o, Car c, Demo d "
    "WHERE c.ownerid = o.id AND o.id = d.ownerid "
    "AND d.salary BETWEEN 25000 AND 90000",
]

AGGRESSIVE_CONFIGS = [
    AdaptiveConfig(mode=ReorderMode.BOTH),
    AdaptiveConfig(
        mode=ReorderMode.BOTH,
        check_frequency=1,
        history_window=5,
        switch_benefit_threshold=0.0,
        warmup_rows=1,
    ),
    AdaptiveConfig(mode=ReorderMode.INNER_ONLY, check_frequency=1, warmup_rows=1),
    AdaptiveConfig(mode=ReorderMode.DRIVING_ONLY, check_frequency=2, warmup_rows=2),
    AdaptiveConfig(mode=ReorderMode.BOTH, switch_at_key_boundary=True),
    AdaptiveConfig(mode=ReorderMode.BOTH, dynamic_access_path=True),
    AdaptiveConfig(mode=ReorderMode.MONITOR_ONLY),
]


def expected_rows(db, sql):
    plan = db.plan(sql)
    expanded = QuerySpec(
        tables=plan.query.tables,
        local_predicates=plan.query.local_predicates,
        join_predicates=plan.query.join_predicates,
        projection=plan.projection,
    )
    return sorted(reference_join(db, expanded))


@pytest.mark.parametrize("sql", QUERIES)
@pytest.mark.parametrize("config", AGGRESSIVE_CONFIGS)
def test_every_mode_matches_reference(sql, config, three_table_db):
    result = three_table_db.execute(sql, config)
    assert sorted(result.rows) == expected_rows(three_table_db, sql)


class ScriptedController:
    """Forces random (valid) reorders at every safe point.

    This is an adversarial stand-in for the cost-based controller: it
    exercises the duplicate-prevention machinery much harder than any
    realistic policy would.
    """

    def __init__(self, seed: int, inner_probability: float, driving_probability: float):
        self.rng = random.Random(seed)
        self.inner_probability = inner_probability
        self.driving_probability = driving_probability
        self.pipeline: PipelineExecutor | None = None
        self.switches = 0

    def attach(self, pipeline: PipelineExecutor) -> None:
        self.pipeline = pipeline

    def _random_connected_order(self, prefix):
        graph = self.pipeline.join_graph
        orders = [
            order
            for order in graph.connected_orders(tuple(prefix))
            if len(order) == len(self.pipeline.order)
        ]
        return list(self.rng.choice(orders)) if orders else None

    def on_suffix_depleted(self, position: int) -> None:
        pipeline = self.pipeline
        if position >= len(pipeline.order) - 1:
            return
        if self.rng.random() >= self.inner_probability:
            return
        order = self._random_connected_order(pipeline.order[:position])
        if order is None:
            return
        new_suffix = list(order[position:])
        if new_suffix != pipeline.order[position:]:
            pipeline.apply_inner_order(position, new_suffix)
            self.switches += 1

    def on_pipeline_depleted(self) -> bool:
        pipeline = self.pipeline
        if len(pipeline.order) < 2:
            return False
        if self.rng.random() >= self.driving_probability:
            return False
        candidates = [a for a in pipeline.order[1:]]
        self.rng.shuffle(candidates)
        for candidate in candidates:
            order = self._random_connected_order([candidate])
            if order is not None:
                pipeline.apply_driving_switch(order)
                self.switches += 1
                return True
        return False


def run_scripted(db, sql, seed, inner_probability, driving_probability):
    plan = db.plan(sql)
    config = AdaptiveConfig(mode=ReorderMode.BOTH)
    controller = ScriptedController(seed, inner_probability, driving_probability)
    executor = PipelineExecutor(plan, db.catalog, config, controller)
    controller.attach(executor)
    return sorted(executor.run_to_completion()), controller.switches


@pytest.mark.parametrize("sql", QUERIES)
def test_scripted_chaos_preserves_results(sql):
    db = build_three_table_db(owners=30, seed=3)
    expected = expected_rows(db, sql)
    total_switches = 0
    for seed in range(6):
        rows, switches = run_scripted(
            db, sql, seed, inner_probability=0.3, driving_probability=0.5
        )
        total_switches += switches
        assert rows == expected, f"seed {seed}"
    assert total_switches > 0, "the chaos controller never switched anything"


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    data_seed=st.integers(min_value=0, max_value=50),
    inner_probability=st.floats(min_value=0.0, max_value=1.0),
    driving_probability=st.floats(min_value=0.0, max_value=1.0),
)
def test_property_random_schedules_and_data(
    seed, data_seed, inner_probability, driving_probability
):
    """Property: any switch schedule on any data preserves the answer."""
    db = build_three_table_db(owners=20, seed=data_seed)
    sql = (
        "SELECT o.name, c.make, d.salary FROM Owner o, Car c, Demo d "
        "WHERE c.ownerid = o.id AND o.id = d.ownerid AND d.salary < 70000"
    )
    expected = expected_rows(db, sql)
    rows, _ = run_scripted(db, sql, seed, inner_probability, driving_probability)
    assert rows == expected


def test_switch_back_and_forth_is_exact():
    """Deterministic A->B->A->B driving ping-pong loses and repeats nothing."""
    db = build_three_table_db(owners=25, seed=11)
    sql = (
        "SELECT o.id, c.id FROM Owner o, Car c WHERE c.ownerid = o.id"
    )
    expected = expected_rows(db, sql)

    class PingPong:
        def __init__(self):
            self.pipeline = None

        def attach(self, pipeline):
            self.pipeline = pipeline

        def on_suffix_depleted(self, position):
            return None

        def on_pipeline_depleted(self):
            pipeline = self.pipeline
            if pipeline.driving_rows_since_check < 3:
                return False
            other = [a for a in pipeline.order[1:]]
            pipeline.apply_driving_switch(other + [pipeline.order[0]])
            return True

    plan = db.plan(sql)
    controller = PingPong()
    executor = PipelineExecutor(
        plan, db.catalog, AdaptiveConfig(mode=ReorderMode.BOTH), controller
    )
    controller.attach(executor)
    rows = sorted(executor.run_to_completion())
    assert rows == expected
    assert executor.driving_switches >= 3
