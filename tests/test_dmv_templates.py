"""Tests for the DMV query workload templates."""

import pytest

from repro.dmv.templates import (
    four_table_workload,
    six_table_workload,
    template_count,
)
from repro.query.sql.parser import parse_sql


class TestFourTableWorkload:
    def test_template_count(self):
        assert template_count() == 5

    def test_default_size_matches_paper(self):
        workload = four_table_workload(queries_per_template=60)
        # ~300 queries over 5 templates (some grids are smaller than 60).
        assert 250 <= len(workload) <= 300
        assert {q.template for q in workload} == {1, 2, 3, 4, 5}

    def test_deterministic(self):
        a = four_table_workload(queries_per_template=10, seed=1)
        b = four_table_workload(queries_per_template=10, seed=1)
        assert [q.sql for q in a] == [q.sql for q in b]

    def test_unique_qids(self):
        workload = four_table_workload(queries_per_template=20)
        qids = [q.qid for q in workload]
        assert len(qids) == len(set(qids))

    def test_all_queries_parse_and_connect(self):
        for query in four_table_workload(queries_per_template=8):
            spec = parse_sql(query.sql)
            assert len(spec.tables) == 4
            assert spec.join_graph().is_connected(), query.qid

    def test_every_query_is_four_table_join(self):
        for query in four_table_workload(queries_per_template=5):
            spec = parse_sql(query.sql)
            assert len(spec.join_predicates) == 3


class TestSixTableWorkload:
    def test_size(self):
        assert len(six_table_workload(count=100)) == 100

    def test_all_queries_parse_and_connect(self):
        for query in six_table_workload(count=20):
            spec = parse_sql(query.sql)
            assert len(spec.tables) == 6
            assert spec.join_graph().is_connected(), query.qid

    def test_queries_run_on_extended_dmv(self):
        from repro import AdaptiveConfig, ReorderMode
        from repro.dmv import load_dmv

        db, _ = load_dmv(scale=0.01, extended=True)
        for query in six_table_workload(count=4):
            result = db.execute(query.sql, AdaptiveConfig(mode=ReorderMode.NONE))
            assert result.rows is not None
