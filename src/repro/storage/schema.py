"""Table schemas: ordered column definitions with fast name lookup."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.errors import SchemaError, StorageError
from repro.storage.types import ColumnType


@dataclass(frozen=True)
class Column:
    """A single column definition."""

    name: str
    type: ColumnType
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid column name: {self.name!r}")


@dataclass(frozen=True)
class TableSchema:
    """An ordered set of columns for one table.

    Rows of the table are tuples whose slots correspond positionally to
    ``columns``. Column lookup by name is O(1) via a cached index map.
    """

    name: str
    columns: tuple[Column, ...]
    _index: dict[str, int] = field(init=False, repr=False, compare=False)

    def __init__(self, name: str, columns: Sequence[Column]) -> None:
        if not name or not name.isidentifier():
            raise SchemaError(f"invalid table name: {name!r}")
        cols = tuple(columns)
        if not cols:
            raise SchemaError(f"table {name!r} must have at least one column")
        index: dict[str, int] = {}
        for position, column in enumerate(cols):
            if column.name in index:
                raise SchemaError(
                    f"table {name!r}: duplicate column {column.name!r}"
                )
            index[column.name] = position
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "columns", cols)
        object.__setattr__(self, "_index", index)

    def __len__(self) -> int:
        return len(self.columns)

    def column_names(self) -> tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    def has_column(self, name: str) -> bool:
        return name in self._index

    def position_of(self, name: str) -> int:
        """Return the tuple slot of column *name*, raising on unknown names."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def column(self, name: str) -> Column:
        return self.columns[self.position_of(name)]

    def validate_row(self, values: Iterable[Any]) -> tuple[Any, ...]:
        """Validate and coerce an insertable row, returning the stored tuple."""
        row = tuple(values)
        if len(row) != len(self.columns):
            raise StorageError(
                f"table {self.name!r}: expected {len(self.columns)} values, "
                f"got {len(row)}"
            )
        coerced = []
        for column, value in zip(self.columns, row):
            if value is None and not column.nullable:
                raise StorageError(
                    f"table {self.name!r}: column {column.name!r} is NOT NULL"
                )
            coerced.append(column.type.validate(value, column.name))
        return tuple(coerced)
