"""Per-query execution budgets and cooperative cancellation.

An :class:`ExecutionLimits` bundle caps what one query may consume: result
rows, work units off the deterministic :class:`~repro.storage.counters`
meter, wall-clock time, and an externally triggered
:class:`CancellationToken`. The pipeline executor checks the bundle at its
safe points — before each driving row and after each emitted row — and
raises :class:`~repro.errors.BudgetExceeded` carrying partial-progress
stats when any cap is hit.

Checking at safe points (rather than inside probes) keeps the hot path
unchanged and guarantees the pipeline state is consistent when the
exception unwinds, so a caller can still read the executor's counters and
event log.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import BudgetExceeded

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.executor.pipeline import PipelineExecutor


class CancellationToken:
    """Thread-safe cooperative cancellation flag.

    A client (timeout thread, signal handler, admission controller, server
    connection handler) calls :meth:`cancel`; the executor observes it at
    the next safe point — or, for partitioned parallel execution, the
    coordinator observes it at the next wave barrier.

    Guarantees:

    * :meth:`cancel` is **idempotent** — only the first call wins; its
      reason is the one every later observer reads, and repeat calls
      (from any thread, with any reason) change nothing;
    * :meth:`cancel` is **thread-safe** — concurrent callers race only
      for who is first; the flag and the reason are always consistent
      (the reason is published before the event is set, so an executor
      that sees ``cancelled`` reads the winning reason).
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self._lock = threading.Lock()
        self.reason: str = "cancelled"

    def cancel(self, reason: str | None = None) -> bool:
        """Latch the token; returns True only for the winning first call."""
        with self._lock:
            if self._event.is_set():
                return False
            if reason is not None:
                self.reason = reason
            self._event.set()
            return True

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()


@dataclass(frozen=True)
class ExecutionLimits:
    """Budgets for one query execution; ``None`` fields are unlimited."""

    max_rows: int | None = None
    max_work_units: float | None = None
    timeout_seconds: float | None = None
    cancellation: CancellationToken | None = None

    def __post_init__(self) -> None:
        if self.max_rows is not None and self.max_rows < 1:
            raise ValueError("max_rows must be >= 1")
        if self.max_work_units is not None and self.max_work_units <= 0:
            raise ValueError("max_work_units must be > 0")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be > 0")

    @property
    def unlimited(self) -> bool:
        return (
            self.max_rows is None
            and self.max_work_units is None
            and self.timeout_seconds is None
            and self.cancellation is None
        )


class LimitEnforcer:
    """Binds an :class:`ExecutionLimits` to one running pipeline."""

    def __init__(self, limits: ExecutionLimits, pipeline: "PipelineExecutor") -> None:
        self.limits = limits
        self.pipeline = pipeline
        self._started_at = time.perf_counter()
        self._work_floor = pipeline.catalog.meter.total_units
        self._deadline = (
            self._started_at + limits.timeout_seconds
            if limits.timeout_seconds is not None
            else None
        )

    def _exceeded(self, reason: str) -> BudgetExceeded:
        pipeline = self.pipeline
        return BudgetExceeded(
            reason,
            rows_emitted=pipeline.rows_emitted,
            work_units=pipeline.catalog.meter.total_units - self._work_floor,
            elapsed_seconds=time.perf_counter() - self._started_at,
            driving_rows=pipeline.driving_rows_total,
        )

    def check_emit(self) -> None:
        """Safe point before emitting one more row.

        Called *before* the emit counters move, so when the row budget is
        exactly ``max_rows`` the caller receives precisely that many rows
        and the exception's partial-progress stats match what was
        delivered.
        """
        max_rows = self.limits.max_rows
        if max_rows is not None and self.pipeline.rows_emitted >= max_rows:
            raise self._exceeded(f"row budget exceeded ({max_rows} rows)")
        self.check()

    def check(self) -> None:
        """Raise :class:`BudgetExceeded` if any budget is spent."""
        limits = self.limits
        token = limits.cancellation
        if token is not None and token.cancelled:
            raise self._exceeded(f"query cancelled: {token.reason}")
        if limits.max_work_units is not None:
            spent = self.pipeline.catalog.meter.total_units - self._work_floor
            if spent > limits.max_work_units:
                raise self._exceeded(
                    f"work budget exceeded ({limits.max_work_units:,.0f} units)"
                )
        if self._deadline is not None and time.perf_counter() > self._deadline:
            raise self._exceeded(
                f"deadline exceeded ({limits.timeout_seconds * 1000:.0f} ms)"
            )
