"""E4 — Fig 8: reordering only inner legs, per-template normalized time.

Paper shape: per-template elapsed time with inner-only reordering is
75-100% of the no-reorder time; queries whose inner order changed improve
by roughly 10-20%.
"""

from conftest import emit_report

from repro.bench import template_ratio_experiment
from repro.core.config import ReorderMode


def test_fig8_inner_only(benchmark, dmv_db, workload):
    result = benchmark.pedantic(
        lambda: template_ratio_experiment(dmv_db, workload, ReorderMode.INNER_ONLY),
        rounds=1,
        iterations=1,
    )
    emit_report(
        "fig8_inner",
        result.report("Fig 8 — inner-leg-only reordering (% of no-reorder time)"),
    )
    for template, (all_ratio, changed_ratio, changed) in result.ratios.items():
        # Inner-only reordering must never blow up a template (its changes
        # happen at depleted states and cost nothing to apply).
        assert all_ratio < 1.05, f"template {template} regressed: {all_ratio:.2f}"
    changed_ratios = [
        changed_ratio
        for _, changed_ratio, changed in result.ratios.values()
        if changed
    ]
    assert changed_ratios, "no template had inner-order changes"
    assert min(changed_ratios) < 0.95, (
        "expected >=5% improvement on changed queries in some template"
    )
