"""Storage substrate: heap tables, ordered indexes, resumable cursors."""

from repro.storage.backend import (
    BACKEND_NAMES,
    BACKENDS,
    StorageBackend,
    get_backend,
)
from repro.storage.columnar import ColumnarIndex, ColumnarTable
from repro.storage.counters import WorkMeter
from repro.storage.cursor import (
    IndexScanCursor,
    KeyRange,
    ScanOrder,
    TableScanCursor,
)
from repro.storage.index import SortedIndex
from repro.storage.schema import Column, TableSchema
from repro.storage.table import HeapTable, Row
from repro.storage.types import ColumnType

__all__ = [
    "BACKENDS",
    "BACKEND_NAMES",
    "Column",
    "ColumnType",
    "ColumnarIndex",
    "ColumnarTable",
    "HeapTable",
    "StorageBackend",
    "get_backend",
    "IndexScanCursor",
    "KeyRange",
    "Row",
    "ScanOrder",
    "SortedIndex",
    "TableSchema",
    "TableScanCursor",
    "WorkMeter",
]
