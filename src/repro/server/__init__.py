"""Concurrent query serving for the adaptive join engine.

The package lifts PR 1-4's *per-query* robustness (budgets, cancellation,
sandboxed degradation, batched/parallel execution) to *system-level* QoS:
an asyncio multi-client server speaking newline-delimited JSON, with

* bounded admission control — explicit ``REJECTED_OVERLOAD`` instead of
  unbounded buffering (:mod:`repro.server.admission`),
* per-client token-bucket rate limits and fair round-robin scheduling
  across sessions (:mod:`repro.server.session`,
  :mod:`repro.server.scheduler`),
* server-enforced :class:`~repro.robustness.limits.ExecutionLimits` wired
  to a :class:`~repro.robustness.limits.CancellationToken` per request, so
  client disconnects cancel in-flight queries,
* graceful degradation under pressure — shed to serial, then to the
  static plan, before rejecting — and drain-then-exit on SIGTERM,
* a shared cross-query plan cache with single-flight stampede protection
  (:mod:`repro.server.plancache`), and
* a live ``stats`` op backed by the :mod:`repro.obs.metrics` registry.
"""

from repro.server.admission import AdmissionController, ServerConfig
from repro.server.plancache import PlanCache, normalize_sql, template_signature
from repro.server.protocol import (
    ErrorCode,
    ProtocolError,
    QueryRequest,
    decode_request,
    encode_response,
)
from repro.server.scheduler import FairScheduler
from repro.server.session import Session, TokenBucket
from repro.server.server import DatabaseEngine, EngineResult, QueryServer

__all__ = [
    "AdmissionController",
    "DatabaseEngine",
    "EngineResult",
    "ErrorCode",
    "FairScheduler",
    "PlanCache",
    "ProtocolError",
    "QueryRequest",
    "QueryServer",
    "ServerConfig",
    "Session",
    "TokenBucket",
    "decode_request",
    "encode_response",
    "normalize_sql",
    "template_signature",
]
