"""The exception hierarchy is stable API: everything derives from ReproError."""

import pytest

from repro import AdaptiveConfig, Database, ReorderMode
from repro.errors import (
    BudgetExceeded,
    CatalogError,
    ExecutionError,
    OracleViolation,
    PermanentStorageError,
    PlanError,
    QueryError,
    ReproError,
    SchemaError,
    SqlSyntaxError,
    StorageError,
    TransientStorageError,
)

ALL_ERRORS = [
    BudgetExceeded,
    CatalogError,
    ExecutionError,
    OracleViolation,
    PermanentStorageError,
    PlanError,
    QueryError,
    SchemaError,
    SqlSyntaxError,
    StorageError,
    TransientStorageError,
]


@pytest.mark.parametrize("error_type", ALL_ERRORS)
def test_all_derive_from_repro_error(error_type):
    assert issubclass(error_type, ReproError)


def test_sql_syntax_error_is_query_error():
    assert issubclass(SqlSyntaxError, QueryError)


def test_sql_syntax_error_position():
    error = SqlSyntaxError("bad", position=7)
    assert error.position == 7
    assert "offset 7" in str(error)


def test_sql_syntax_error_without_position():
    error = SqlSyntaxError("bad")
    assert error.position is None
    assert str(error) == "bad"


def test_storage_fault_kinds_are_storage_errors():
    assert issubclass(TransientStorageError, StorageError)
    assert issubclass(PermanentStorageError, StorageError)


def test_budget_and_oracle_are_execution_errors():
    assert issubclass(BudgetExceeded, ExecutionError)
    assert issubclass(OracleViolation, ExecutionError)


def test_sql_syntax_error_position_survives_db_execute():
    """The parser's error offset reaches the caller of the facade."""
    db = Database()
    db.create_table("T", [("id", "int")])
    with pytest.raises(SqlSyntaxError) as excinfo:
        db.execute("SELECT t.id FRM T t")
    error = excinfo.value
    assert error.position is not None
    assert f"offset {error.position}" in str(error)


class TestAdaptiveConfigValidation:
    def test_check_frequency_bound(self):
        with pytest.raises(ValueError, match="check_frequency must be >= 1"):
            AdaptiveConfig(mode=ReorderMode.BOTH, check_frequency=0)

    def test_history_window_bound(self):
        with pytest.raises(ValueError, match="history_window must be >= 1"):
            AdaptiveConfig(mode=ReorderMode.BOTH, history_window=0)

    def test_switch_benefit_threshold_bounds(self):
        with pytest.raises(ValueError, match="switch_benefit_threshold"):
            AdaptiveConfig(mode=ReorderMode.BOTH, switch_benefit_threshold=1.0)
        with pytest.raises(ValueError, match="switch_benefit_threshold"):
            AdaptiveConfig(mode=ReorderMode.BOTH, switch_benefit_threshold=-0.1)

    def test_warmup_rows_bound(self):
        with pytest.raises(ValueError, match="warmup_rows must be >= 0"):
            AdaptiveConfig(mode=ReorderMode.BOTH, warmup_rows=-1)

    def test_boundary_values_accepted(self):
        config = AdaptiveConfig(
            mode=ReorderMode.BOTH,
            check_frequency=1,
            history_window=1,
            switch_benefit_threshold=0.0,
            warmup_rows=0,
        )
        assert config.check_frequency == 1
