"""Heap tables: append-only, RID-addressed row storage.

A :class:`HeapTable` stores rows as tuples in insertion order. The row id
(RID) of a row is its position in the heap and never changes; this mirrors
the RID order a real system exposes for table scans and that the paper's
driving-leg positional predicates rely on (Sec 4.2).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from repro.errors import StorageError
from repro.storage.counters import WorkMeter
from repro.storage.schema import TableSchema

Row = tuple[Any, ...]


class HeapTable:
    """An in-memory heap of rows for one table."""

    __slots__ = ("schema", "_rows", "meter", "faults", "version")

    #: Storage-backend tag; subclasses (columnar) override.
    backend_name = "row"

    def __init__(self, schema: TableSchema, meter: WorkMeter | None = None) -> None:
        self.schema = schema
        self._rows: list[Row] = []
        self.meter = meter if meter is not None else WorkMeter()
        # Fault-injection hook (repro.robustness.faults.FaultInjector) shared
        # by every table of a catalog during a chaos run; None in production.
        # Indexes and cursors consult it through their table reference.
        self.faults = None
        # Monotonic mutation counter; memoizing layers (the probe cache)
        # compare it to detect that cached match lists may be stale.
        self.version = 0

    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def cardinality(self) -> int:
        return len(self._rows)

    def insert(self, values: Sequence[Any]) -> int:
        """Append a row, returning its RID."""
        row = self.schema.validate_row(values)
        self._rows.append(row)
        self.version += 1
        return len(self._rows) - 1

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        """Append many rows; returns the number inserted."""
        count = 0
        for values in rows:
            self.insert(values)
            count += 1
        return count

    def fetch(self, rid: int) -> Row:
        """Fetch a row by RID, charging one row fetch."""
        if rid < 0 or rid >= len(self._rows):
            raise StorageError(
                f"table {self.name!r}: RID {rid} out of range [0, {len(self._rows)})"
            )
        self.meter.charge_row_fetch()
        return self._rows[rid]

    def peek(self, rid: int) -> Row:
        """Fetch a row by RID without charging work (for stats/tests)."""
        if rid < 0 or rid >= len(self._rows):
            raise StorageError(
                f"table {self.name!r}: RID {rid} out of range [0, {len(self._rows)})"
            )
        return self._rows[rid]

    def scan(self) -> Iterator[tuple[int, Row]]:
        """Yield (rid, row) pairs in RID order, charging per-row fetches."""
        for rid, row in enumerate(self._rows):
            self.meter.charge_row_fetch()
            yield rid, row

    def raw_rows(self) -> Sequence[Row]:
        """Uncharged access to all rows (statistics collection, tests)."""
        return self._rows

    def column_values(self, column: str) -> list[Any]:
        """Uncharged projection of one column (statistics collection)."""
        position = self.schema.position_of(column)
        return [row[position] for row in self._rows]
