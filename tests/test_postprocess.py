"""Tests for aggregates, GROUP BY, ORDER BY, LIMIT (the blocking stage)."""

import pytest

from repro import AdaptiveConfig, Database, QueryError, ReorderMode
from repro.errors import SqlSyntaxError
from repro.query.aggregates import AggFunc, Aggregate, OrderItem
from repro.query.query import OutputColumn, QuerySpec
from repro.query.sql.parser import parse_sql

from tests.conftest import build_three_table_db


@pytest.fixture(scope="module")
def agg_db():
    db = Database()
    db.create_table("T", [("id", "int"), ("grp", "string"), ("v", "int")])
    db.create_index("T", "id")
    rows = [(i, "ab"[i % 2], i * 10) for i in range(10)]
    rows.append((10, "a", None))  # NULL value for aggregate semantics
    db.insert("T", rows)
    db.analyze()
    return db


class TestParsing:
    def test_count_star(self):
        spec = parse_sql("SELECT COUNT(*) FROM T")
        (item,) = spec.select_items
        assert isinstance(item, Aggregate)
        assert item.func is AggFunc.COUNT_STAR

    def test_aggregate_with_column(self):
        spec = parse_sql("SELECT SUM(T.v) FROM T")
        (item,) = spec.select_items
        assert item.func is AggFunc.SUM
        assert item.column == OutputColumn("T", "v")

    def test_group_by(self):
        spec = parse_sql("SELECT T.grp, COUNT(*) FROM T GROUP BY T.grp")
        assert spec.group_by == (OutputColumn("T", "grp"),)

    def test_order_by_directions(self):
        spec = parse_sql("SELECT T.id FROM T ORDER BY T.v DESC, T.id ASC")
        assert spec.order_by == (
            OrderItem(OutputColumn("T", "v"), descending=True),
            OrderItem(OutputColumn("T", "id"), descending=False),
        )

    def test_limit(self):
        assert parse_sql("SELECT T.id FROM T LIMIT 5").limit == 5

    def test_negative_limit_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT T.id FROM T LIMIT -1")

    def test_sum_star_rejected(self):
        with pytest.raises(SqlSyntaxError, match="SUM"):
            parse_sql("SELECT SUM(*) FROM T")

    def test_plain_queries_keep_projection_path(self):
        spec = parse_sql("SELECT T.id FROM T")
        assert spec.select_items == ()
        assert not spec.has_post_processing

    def test_count_is_not_reserved(self):
        # COUNT used as a plain column name still parses.
        spec = parse_sql("SELECT T.count FROM T")
        assert spec.projection == (OutputColumn("T", "count"),)


class TestValidation:
    def test_ungrouped_column_with_aggregate(self):
        with pytest.raises(QueryError, match="GROUP BY"):
            parse_sql("SELECT T.grp, COUNT(*) FROM T")

    def test_group_by_without_aggregate(self):
        with pytest.raises(QueryError, match="requires at least one aggregate"):
            parse_sql("SELECT T.grp FROM T GROUP BY T.grp")

    def test_order_by_non_grouped_column(self):
        with pytest.raises(QueryError):
            parse_sql("SELECT T.grp, COUNT(*) FROM T GROUP BY T.grp ORDER BY T.v")

    def test_spec_rejects_projection_and_items(self):
        with pytest.raises(QueryError, match="not both"):
            QuerySpec(
                tables={"T": "T"},
                projection=[OutputColumn("T", "a")],
                select_items=[OutputColumn("T", "a")],
            )


class TestExecution:
    def test_group_by_aggregates(self, agg_db):
        rows = agg_db.execute(
            "SELECT T.grp, COUNT(*), SUM(T.v), MIN(T.v), MAX(T.v) "
            "FROM T GROUP BY T.grp ORDER BY T.grp"
        ).rows
        assert rows == [("a", 6, 200, 0, 80), ("b", 5, 250, 10, 90)]

    def test_count_ignores_nulls_count_star_does_not(self, agg_db):
        rows = agg_db.execute("SELECT COUNT(*), COUNT(T.v) FROM T").rows
        assert rows == [(11, 10)]

    def test_avg(self, agg_db):
        rows = agg_db.execute("SELECT AVG(T.v) FROM T").rows
        assert rows == [(45.0)] or rows == [(45.0,)]

    def test_global_aggregate_over_empty_input(self, agg_db):
        rows = agg_db.execute("SELECT COUNT(*), SUM(T.v) FROM T WHERE T.id > 99").rows
        assert rows == [(0, None)]

    def test_order_by_asc_desc(self, agg_db):
        asc = agg_db.execute("SELECT T.id FROM T WHERE T.v > 60 ORDER BY T.v").rows
        desc = agg_db.execute(
            "SELECT T.id FROM T WHERE T.v > 60 ORDER BY T.v DESC"
        ).rows
        assert asc == list(reversed(desc))
        assert asc == [(7,), (8,), (9,)]

    def test_order_by_nulls_first(self, agg_db):
        rows = agg_db.execute("SELECT T.v FROM T ORDER BY T.v LIMIT 2").rows
        assert rows == [(None,), (0,)]

    def test_order_by_column_not_in_select(self, agg_db):
        rows = agg_db.execute("SELECT T.id FROM T ORDER BY T.v DESC LIMIT 1").rows
        assert rows == [(9,)]
        assert len(rows[0]) == 1  # the order key is not leaked into output

    def test_select_star_with_order_and_limit(self, agg_db):
        rows = agg_db.execute("SELECT * FROM T ORDER BY T.id DESC LIMIT 2").rows
        assert [r[0] for r in rows] == [10, 9]
        assert len(rows[0]) == 3

    def test_limit_zero(self, agg_db):
        assert agg_db.execute("SELECT T.id FROM T LIMIT 0").rows == []

    def test_limit_beyond_rows(self, agg_db):
        assert len(agg_db.execute("SELECT T.id FROM T LIMIT 999").rows) == 11


class TestAboveAdaptivePipeline:
    """Sec 3.1/footnote 3: blocking stage is reorder-invariant."""

    SQL = (
        "SELECT o.country, COUNT(*) FROM Owner o, Car c, Demo d "
        "WHERE c.ownerid = o.id AND o.id = d.ownerid "
        "AND c.make = 'Rare' AND d.salary < 90000 "
        "GROUP BY o.country ORDER BY o.country"
    )

    def test_aggregate_identical_under_adaptation(self):
        db = build_three_table_db(owners=500, seed=31)
        static = db.execute(self.SQL, AdaptiveConfig(mode=ReorderMode.NONE))
        adaptive = db.execute(
            self.SQL,
            AdaptiveConfig(
                mode=ReorderMode.BOTH, check_frequency=1, warmup_rows=1
            ),
        )
        assert static.rows == adaptive.rows  # ordered comparison!

    def test_order_by_restores_sort_after_driving_switch(self):
        db = build_three_table_db(owners=800, seed=33)
        sql = (
            "SELECT o.id, c.id FROM Owner o, Car c "
            "WHERE c.ownerid = o.id AND c.make = 'Rare' "
            "ORDER BY o.id, c.id"
        )
        static = db.execute(sql, AdaptiveConfig(mode=ReorderMode.NONE))
        adaptive = db.execute(
            sql,
            AdaptiveConfig(
                mode=ReorderMode.BOTH,
                check_frequency=1,
                warmup_rows=1,
                switch_benefit_threshold=0.0,
            ),
        )
        assert static.rows == adaptive.rows
        assert static.rows == sorted(static.rows)
