#!/usr/bin/env python3
"""Validate JSONL observability artifacts against the shared schemas.

Two line-oriented formats are understood (auto-detected per file from the
first line, see ``repro.obs.schema.sniff_kind``):

* **span traces** (``src/repro/obs/trace.py``): one span object per line
  with exactly the documented keys; unique ids, parents before children,
  ``end_ms >= start_ms``, at least one root;
* **telemetry segments** (``src/repro/obs/recorder.py``): one typed
  record per line; every record must carry a known ``"type"`` tag
  (currently only ``"flight"``) — an unknown record type is a hard
  validation error (non-zero exit), so schema drift fails loudly.

Arguments may be files or directories; a directory is expanded to every
``*.jsonl`` file inside it (the layout of a ``--telemetry-dir``). The
schemas themselves live in ``repro.obs.schema`` — this script is a thin
CLI that adds the repo's ``src/`` to ``sys.path`` itself, so it runs
without ``PYTHONPATH`` in any CI image.

Usage::

    python scripts/validate_trace.py trace.jsonl
    python scripts/validate_trace.py telemetry-dir/
    python scripts/validate_trace.py trace.jsonl telemetry-dir/

Exits 0 with a per-file summary on success; exits 1 naming the first
offending file/line on failure; exits 2 on usage errors.
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.obs.schema import (  # noqa: E402
    TelemetryValidator,
    TraceValidator,
    sniff_kind,
)


def expand(paths: list[str]) -> list[str]:
    """Files as given; directories become their ``*.jsonl`` members."""
    out: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            members = sorted(
                os.path.join(path, name)
                for name in os.listdir(path)
                if name.endswith(".jsonl")
            )
            if not members:
                print(
                    f"INVALID: {path}: directory has no .jsonl files",
                    file=sys.stderr,
                )
                raise SystemExit(1)
            out.extend(members)
        else:
            out.append(path)
    return out


def validate_file(path: str) -> str:
    """Validate one file; returns a summary line or exits 1."""

    def fail(line_no: int, message: str) -> "None":
        print(f"INVALID: {path}:{line_no}: {message}", file=sys.stderr)
        raise SystemExit(1)

    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as error:
        print(f"INVALID: {path}: cannot read: {error}", file=sys.stderr)
        raise SystemExit(1)
    if not lines:
        fail(0, "file is empty")
    kind = sniff_kind(lines[0])
    if kind == "unknown":
        fail(1, "cannot detect format (neither a span nor a typed record)")
    validator = TraceValidator() if kind == "trace" else TelemetryValidator()
    for line_no, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            fail(line_no, f"not valid JSON: {exc}")
        problems = validator.feed(obj)
        if problems:
            fail(line_no, "; ".join(problems))
    problems = validator.finish()
    if problems:
        fail(len(lines), "; ".join(problems))
    if kind == "trace":
        return (
            f"{path}: {validator.lines} span(s), {validator.roots} root(s)"
        )
    return (
        f"{path}: {validator.lines} telemetry record(s), "
        f"{len(validator.seen_query_ids)} unique query id(s)"
    )


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    for path in expand(argv[1:]):
        print("OK: " + validate_file(path))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
