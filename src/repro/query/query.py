"""Query specifications: the engine's logical query representation.

A :class:`QuerySpec` is what the SQL parser produces and what the optimizer
consumes: a set of aliased tables, per-table local predicates (implicitly
AND-ed), equality join predicates, and a projection list. Only
select-project-join queries over conjunctive predicates are supported —
exactly the query class the paper's pipelined NLJN plans cover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import QueryError
from repro.query.joingraph import JoinGraph, JoinPredicate
from repro.query.predicates import LocalPredicate


@dataclass(frozen=True)
class OutputColumn:
    """One projected column, ``alias.column``."""

    alias: str
    column: str

    def __str__(self) -> str:
        return f"{self.alias}.{self.column}"


@dataclass(frozen=True)
class QuerySpec:
    """A select-project-join query, optionally with blocking modifiers.

    ``projection`` is what the *pipeline* must output (empty means
    ``SELECT *``). When the query carries aggregates, GROUP BY, ORDER BY,
    or LIMIT, those are applied by a blocking post-processing stage above
    the pipeline (Sec 3.1: the pipeline is then a "pipelined portion of a
    bigger plan"); ``select_items`` records the user-visible select list
    and ``projection`` is derived to cover every column the modifiers
    need.
    """

    tables: Mapping[str, str]  # alias -> table name
    local_predicates: Mapping[str, tuple[LocalPredicate, ...]]
    join_predicates: tuple[JoinPredicate, ...]
    projection: tuple[OutputColumn, ...]
    select_items: tuple  # tuple[SelectItem, ...]; () = plain projection
    group_by: tuple[OutputColumn, ...]
    order_by: tuple  # tuple[OrderItem, ...]
    limit: int | None

    def __init__(
        self,
        tables: Mapping[str, str],
        local_predicates: Mapping[str, Sequence[LocalPredicate]] | None = None,
        join_predicates: Sequence[JoinPredicate] = (),
        projection: Sequence[OutputColumn] = (),
        select_items: Sequence = (),
        group_by: Sequence[OutputColumn] = (),
        order_by: Sequence = (),
        limit: int | None = None,
    ) -> None:
        from repro.query.aggregates import Aggregate, OrderItem

        if not tables:
            raise QueryError("a query needs at least one table")
        tables = dict(tables)
        locals_in = dict(local_predicates or {})
        for alias in locals_in:
            if alias not in tables:
                raise QueryError(
                    f"local predicates reference unknown alias {alias!r}"
                )
        normalized_locals = {
            alias: tuple(locals_in.get(alias, ())) for alias in tables
        }
        joins = tuple(join_predicates)
        for predicate in joins:
            for alias in predicate.aliases():
                if alias not in tables:
                    raise QueryError(
                        f"join predicate {predicate} references unknown "
                        f"alias {alias!r}"
                    )

        def check_column(output: OutputColumn, what: str) -> None:
            if output.alias not in tables:
                raise QueryError(
                    f"{what} {output} references unknown alias "
                    f"{output.alias!r}"
                )

        items = tuple(select_items)
        groups = tuple(group_by)
        orders = tuple(order_by)
        for column in groups:
            check_column(column, "GROUP BY column")
        for item in orders:
            if not isinstance(item, OrderItem):
                raise QueryError("order_by entries must be OrderItem")
            check_column(item.column, "ORDER BY column")
        has_aggregates = any(isinstance(item, Aggregate) for item in items)
        for item in items:
            if isinstance(item, Aggregate):
                if item.column is not None:
                    check_column(item.column, "aggregate argument")
            elif isinstance(item, OutputColumn):
                check_column(item, "select item")
                if has_aggregates and item not in groups:
                    raise QueryError(
                        f"select item {item} must appear in GROUP BY when "
                        "aggregates are used"
                    )
            else:
                raise QueryError(
                    "select_items must be OutputColumn or Aggregate"
                )
        if groups and not has_aggregates:
            raise QueryError("GROUP BY requires at least one aggregate")
        if has_aggregates:
            for item in orders:
                if item.column not in groups:
                    raise QueryError(
                        f"ORDER BY {item.column} must appear in GROUP BY "
                        "when aggregates are used"
                    )
        if limit is not None and limit < 0:
            raise QueryError("LIMIT must be non-negative")

        if items:
            if projection:
                raise QueryError(
                    "pass either select_items or projection, not both"
                )
            # The pipeline must output every column the blocking stage
            # touches: plain select columns, group keys, aggregate
            # arguments, and order keys.
            needed: list[OutputColumn] = []

            def need(column: OutputColumn) -> None:
                if column not in needed:
                    needed.append(column)

            for item in items:
                if isinstance(item, OutputColumn):
                    need(item)
                elif item.column is not None:
                    need(item.column)
            for column in groups:
                need(column)
            for order_item in orders:
                need(order_item.column)
            proj = tuple(needed)
        else:
            proj = tuple(projection)
            for output in proj:
                check_column(output, "projection")
            if orders and not proj:
                # SELECT * with ORDER BY: the star expansion covers every
                # column, so ordering can always be resolved later.
                pass

        object.__setattr__(self, "tables", tables)
        object.__setattr__(self, "local_predicates", normalized_locals)
        object.__setattr__(self, "join_predicates", joins)
        object.__setattr__(self, "projection", proj)
        object.__setattr__(self, "select_items", items)
        object.__setattr__(self, "group_by", groups)
        object.__setattr__(self, "order_by", orders)
        object.__setattr__(self, "limit", limit)

    @property
    def has_post_processing(self) -> bool:
        """True when a blocking stage must run above the pipeline."""
        return bool(self.select_items or self.order_by) or self.limit is not None

    @property
    def aliases(self) -> tuple[str, ...]:
        return tuple(self.tables)

    def table_of(self, alias: str) -> str:
        try:
            return self.tables[alias]
        except KeyError:
            raise QueryError(f"unknown alias {alias!r}") from None

    def locals_of(self, alias: str) -> tuple[LocalPredicate, ...]:
        return self.local_predicates.get(alias, ())

    def join_graph(self) -> JoinGraph:
        return JoinGraph(self.aliases, self.join_predicates)

    def describe(self) -> str:
        """Human-readable one-per-line rendering (used by EXPLAIN)."""
        lines = ["QuerySpec:"]
        for alias, table in self.tables.items():
            lines.append(f"  {alias} -> {table}")
            for predicate in self.locals_of(alias):
                lines.append(f"    WHERE {predicate}")
        for predicate in self.join_predicates:
            lines.append(f"  JOIN {predicate}")
        if self.projection:
            rendered = ", ".join(str(output) for output in self.projection)
            lines.append(f"  SELECT {rendered}")
        return "\n".join(lines)
