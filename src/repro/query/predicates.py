"""Predicates over single tables, plus engine-internal positional predicates.

Local predicates restrict one table. The supported forms cover the paper's
workload: comparisons against constants, BETWEEN, IN-lists, and disjunctions
of same-column equalities (Example 1's ``make='Chevrolet' OR
make='Mercedes'``). Conjunction is implicit: a query carries a *list* of
local predicates per table.

Each predicate can:

* ``bind(schema)`` — compile itself to a fast ``row -> bool`` closure,
* ``key_ranges(column)`` — report the sargable key ranges it induces on a
  column (or ``None`` if it is not sargable there), which is what the
  optimizer and the run-time access layer use to push predicates into index
  scans.

:class:`PositionalPredicate` is not user-visible: it implements the paper's
duplicate-prevention predicate ``key > v OR (key = v AND rid > r)`` for
driving-leg switches (Sec 4.2). It is evaluated on (rid, row) pairs rather
than rows alone because it constrains the scan *position*.
"""

from __future__ import annotations

import enum
import operator
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.errors import QueryError
from repro.storage.cursor import KeyRange, Position, ScanOrder
from repro.storage.schema import TableSchema
from repro.storage.table import Row

RowTest = Callable[[Row], bool]


class Op(enum.Enum):
    """Comparison operators supported in local predicates."""

    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    @property
    def fn(self) -> Callable[[Any, Any], bool]:
        return _OP_FUNCTIONS[self]


_OP_FUNCTIONS = {
    Op.EQ: operator.eq,
    Op.NE: operator.ne,
    Op.LT: operator.lt,
    Op.LE: operator.le,
    Op.GT: operator.gt,
    Op.GE: operator.ge,
}


@dataclass(frozen=True)
class LocalPredicate:
    """Base class: a boolean condition on rows of a single table."""

    def columns(self) -> tuple[str, ...]:
        raise NotImplementedError

    def bind(self, schema: TableSchema) -> RowTest:
        raise NotImplementedError

    def key_ranges(self, column: str) -> list[KeyRange] | None:
        """Sargable ranges this predicate induces on *column*, else None."""
        raise NotImplementedError


@dataclass(frozen=True)
class Comparison(LocalPredicate):
    """``column <op> constant``. NULL never satisfies a comparison."""

    column: str
    op: Op
    value: Any

    def columns(self) -> tuple[str, ...]:
        return (self.column,)

    def bind(self, schema: TableSchema) -> RowTest:
        pos = schema.position_of(self.column)
        fn = self.op.fn
        value = self.value

        def test(row: Row) -> bool:
            cell = row[pos]
            return cell is not None and fn(cell, value)

        return test

    def key_ranges(self, column: str) -> list[KeyRange] | None:
        if column != self.column:
            return None
        if self.op is Op.EQ:
            return [KeyRange.equal(self.value)]
        if self.op is Op.LT:
            return [KeyRange(high=self.value, high_inclusive=False)]
        if self.op is Op.LE:
            return [KeyRange(high=self.value)]
        if self.op is Op.GT:
            return [KeyRange(low=self.value, low_inclusive=False)]
        if self.op is Op.GE:
            return [KeyRange(low=self.value)]
        return None  # <> is not sargable

    def __str__(self) -> str:
        return f"{self.column} {self.op.value} {self.value!r}"


@dataclass(frozen=True)
class Between(LocalPredicate):
    """``column BETWEEN low AND high`` (inclusive both ends)."""

    column: str
    low: Any
    high: Any

    def columns(self) -> tuple[str, ...]:
        return (self.column,)

    def bind(self, schema: TableSchema) -> RowTest:
        pos = schema.position_of(self.column)
        low, high = self.low, self.high

        def test(row: Row) -> bool:
            cell = row[pos]
            return cell is not None and low <= cell <= high

        return test

    def key_ranges(self, column: str) -> list[KeyRange] | None:
        if column != self.column:
            return None
        return [KeyRange(low=self.low, high=self.high)]

    def __str__(self) -> str:
        return f"{self.column} BETWEEN {self.low!r} AND {self.high!r}"


@dataclass(frozen=True)
class InList(LocalPredicate):
    """``column IN (v1, v2, ...)``."""

    column: str
    values: tuple[Any, ...]

    def __init__(self, column: str, values: Sequence[Any]) -> None:
        if not values:
            raise QueryError(f"IN list for column {column!r} is empty")
        object.__setattr__(self, "column", column)
        object.__setattr__(self, "values", tuple(values))

    def columns(self) -> tuple[str, ...]:
        return (self.column,)

    def bind(self, schema: TableSchema) -> RowTest:
        pos = schema.position_of(self.column)
        values = set(self.values)

        def test(row: Row) -> bool:
            return row[pos] in values

        return test

    def key_ranges(self, column: str) -> list[KeyRange] | None:
        if column != self.column:
            return None
        return [KeyRange.equal(value) for value in sorted(set(self.values))]

    def __str__(self) -> str:
        rendered = ", ".join(repr(value) for value in self.values)
        return f"{self.column} IN ({rendered})"


@dataclass(frozen=True)
class IsNull(LocalPredicate):
    """``column IS NULL`` / ``column IS NOT NULL``.

    Never sargable here: NULLs are not stored in the indexes (SQL equality
    semantics), so an IS NULL check must read the row.
    """

    column: str
    negated: bool = False  # True = IS NOT NULL

    def columns(self) -> tuple[str, ...]:
        return (self.column,)

    def bind(self, schema: TableSchema) -> RowTest:
        pos = schema.position_of(self.column)
        if self.negated:
            return lambda row: row[pos] is not None
        return lambda row: row[pos] is None

    def key_ranges(self, column: str) -> list[KeyRange] | None:
        return None

    def __str__(self) -> str:
        return f"{self.column} IS {'NOT ' if self.negated else ''}NULL"


@dataclass(frozen=True)
class Disjunction(LocalPredicate):
    """OR of same-table predicates, e.g. ``make='Chevrolet' OR make='Mercedes'``.

    Sargable on a column only when *every* disjunct is sargable on it (the
    union of the disjuncts' ranges then covers the disjunction).
    """

    terms: tuple[LocalPredicate, ...]

    def __init__(self, terms: Sequence[LocalPredicate]) -> None:
        flattened: list[LocalPredicate] = []
        for term in terms:
            if isinstance(term, Disjunction):
                flattened.extend(term.terms)
            else:
                flattened.append(term)
        if len(flattened) < 2:
            raise QueryError("a disjunction needs at least two terms")
        object.__setattr__(self, "terms", tuple(flattened))

    def columns(self) -> tuple[str, ...]:
        seen: list[str] = []
        for term in self.terms:
            for column in term.columns():
                if column not in seen:
                    seen.append(column)
        return tuple(seen)

    def bind(self, schema: TableSchema) -> RowTest:
        tests = [term.bind(schema) for term in self.terms]

        def test(row: Row) -> bool:
            return any(t(row) for t in tests)

        return test

    def key_ranges(self, column: str) -> list[KeyRange] | None:
        ranges: list[KeyRange] = []
        for term in self.terms:
            term_ranges = term.key_ranges(column)
            if term_ranges is None:
                return None
            ranges.extend(term_ranges)
        return ranges

    def __str__(self) -> str:
        return " OR ".join(f"({term})" for term in self.terms)


@dataclass(frozen=True)
class PositionalPredicate:
    """Engine-internal: accept only rows *after* a frozen scan position.

    For an index-scan order this is the paper's
    ``key > v OR (key = v AND rid > r)``; for RID order, ``rid > r``.
    Tuple comparison on the order's positions implements both at once.
    """

    order: ScanOrder = field(compare=False)
    after: Position

    def test(self, rid: int, row: Row) -> bool:
        return self.order.position_of(rid, row) > self.after

    def __str__(self) -> str:
        return f"position in {self.order.describe()} > {self.after}"
