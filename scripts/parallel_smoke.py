"""CI quick-smoke for partitioned parallel execution (2 workers).

Gates two properties on a small DMV instance:

1. **Output equality** — every smoke query returns the same result
   multiset under ``workers=2`` (modes NONE and BOTH, scalar and batched)
   as under serial execution; mode NONE additionally matches row *order*
   (partitions concatenate in scan order).
2. **Monitored-mode overhead** — the fast adaptive mode (BOTH, batched,
   chunk-granularity monitoring) running on 2 workers must not be more
   than 10% slower than the serial scalar baseline on the deterministic
   critical path: ``critical_path_work <= 1.10 * serial NONE work``.
   Work units, not wall time, so the gate is immune to CI machine noise.

Exit code 0 on success, 1 with a loud report on any violation.

Usage::

    PYTHONPATH=src python scripts/parallel_smoke.py
"""

from __future__ import annotations

import sys
from collections import Counter

from repro.core.config import AdaptiveConfig, ReorderMode
from repro.dmv import load_dmv, six_table_workload

OVERHEAD_TOLERANCE = 1.10
WORKERS = 2

SCAN_HEAVY = [
    (
        "own-car",
        "SELECT o.name, c.make FROM Car c, Owner o "
        "WHERE c.ownerid = o.id AND c.year >= 2005",
    ),
    (
        "own-car-dem",
        "SELECT o.name, c.make FROM Demographics d, Owner o, Car c "
        "WHERE d.ownerid = o.id AND c.ownerid = o.id AND d.salary > 50000",
    ),
]


def main() -> int:
    db, _ = load_dmv(scale=0.02, extended=True)
    queries = SCAN_HEAVY + [
        (query.qid, query.sql) for query in six_table_workload(count=2)
    ]
    failures: list[str] = []

    for qid, sql in queries:
        serial = db.execute(sql, AdaptiveConfig(mode=ReorderMode.NONE))
        parallel_none = db.execute(
            sql, AdaptiveConfig(mode=ReorderMode.NONE, workers=WORKERS)
        )
        if parallel_none.rows != serial.rows:
            failures.append(
                f"{qid}: workers={WORKERS} mode NONE changed rows "
                f"({len(parallel_none.rows)} vs {len(serial.rows)})"
            )
        for batched in (False, True):
            monitored = db.execute(
                sql,
                AdaptiveConfig(
                    mode=ReorderMode.BOTH,
                    workers=WORKERS,
                    batched=batched,
                    monitor_granularity="chunk" if batched else "exact",
                ),
            )
            if Counter(monitored.rows) != Counter(serial.rows):
                failures.append(
                    f"{qid}: workers={WORKERS} mode BOTH "
                    f"batched={batched} changed the result multiset"
                )

    # Overhead gate on the scan-heavy queries (they actually partition;
    # the six-table templates drive a 200-row table and may fall back).
    serial_work = 0.0
    monitored_path = 0.0
    for qid, sql in SCAN_HEAVY:
        serial = db.execute(sql, AdaptiveConfig(mode=ReorderMode.NONE))
        serial_work += serial.stats.work.total_units
        monitored = db.execute(
            sql,
            AdaptiveConfig(
                mode=ReorderMode.BOTH,
                workers=WORKERS,
                batched=True,
                monitor_granularity="chunk",
            ),
        )
        monitored_path += (
            monitored.stats.critical_path_work
            if monitored.stats.critical_path_work is not None
            else monitored.stats.work.total_units
        )
    ratio = monitored_path / serial_work
    print(
        f"monitored-mode critical path: {monitored_path:,.0f} units vs "
        f"{serial_work:,.0f} serial scalar units ({ratio:.2f}x)"
    )
    if monitored_path > serial_work * OVERHEAD_TOLERANCE:
        failures.append(
            f"monitored mode on {WORKERS} workers is more than "
            f"{(OVERHEAD_TOLERANCE - 1) * 100:.0f}% slower than scalar: "
            f"{ratio:.2f}x"
        )

    db.close()
    if failures:
        for line in failures:
            print(f"SMOKE FAILED: {line}", file=sys.stderr)
        return 1
    print(f"parallel smoke passed: {len(queries)} queries, "
          f"workers={WORKERS}, overhead {ratio:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
