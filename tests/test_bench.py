"""Tests for the benchmark harness (runner, experiments, reporting)."""

import json

import pytest

from repro import AdaptiveConfig, ReorderMode
from repro.bench.experiments import (
    PAPER_TABLE1,
    ablation_experiment,
    overhead_experiment,
    scatter_experiment,
    table1_experiment,
    template_ratio_experiment,
    window_sweep_experiment,
)
from repro.bench.reporting import (
    format_scatter_summary,
    format_table,
    format_workload_metrics,
    to_csv,
    write_csv,
)
from repro.bench.runner import (
    run_workload,
    standard_configs,
    write_json_atomic,
)
from repro.dmv import four_table_workload


@pytest.fixture(scope="module")
def tiny_workload():
    return four_table_workload(queries_per_template=2, seed=5)


class TestRunner:
    def test_standard_configs_modes(self):
        configs = standard_configs()
        assert set(configs) == {"static", "inner-only", "driving-only", "both"}
        assert configs["static"].mode is ReorderMode.NONE

    def test_run_workload_measures_all_modes(self, mini_dmv, tiny_workload):
        db, _ = mini_dmv
        configs = {
            "static": AdaptiveConfig(mode=ReorderMode.NONE),
            "both": AdaptiveConfig(mode=ReorderMode.BOTH),
        }
        result = run_workload(db, tiny_workload, configs)
        assert result.modes() == ["static", "both"]
        assert len(result.by_mode("static")) == len(tiny_workload)
        for measurement in result.measurements:
            assert measurement.work > 0

    def test_verification_runs_reference_first(self, mini_dmv, tiny_workload):
        db, _ = mini_dmv
        configs = {
            "both": AdaptiveConfig(mode=ReorderMode.BOTH),
            "static": AdaptiveConfig(mode=ReorderMode.NONE),
        }
        # static is listed second but must still act as the reference.
        result = run_workload(db, tiny_workload, configs, verify_against="static")
        assert len(result.measurements) == 2 * len(tiny_workload)

    def test_workload_result_accumulates_metrics(self, mini_dmv, tiny_workload):
        db, _ = mini_dmv
        configs = {
            "static": AdaptiveConfig(mode=ReorderMode.NONE),
            "both": AdaptiveConfig(mode=ReorderMode.BOTH),
        }
        result = run_workload(db, tiny_workload, configs)
        queries = result.metrics.counter("bench_queries_total")
        assert queries.value("static") == len(tiny_workload)
        assert queries.value("both") == len(tiny_workload)
        work = result.metrics.counter("bench_work_units_total")
        assert work.value("both") == pytest.approx(
            sum(m.work for m in result.by_mode("both").values())
        )
        histo = result.metrics.histogram(
            "bench_query_work_units", boundaries=(1.0,)
        )
        assert histo.count("static") == len(tiny_workload)

    def test_save_json_round_trips(self, mini_dmv, tiny_workload, tmp_path):
        db, _ = mini_dmv
        configs = {"static": AdaptiveConfig(mode=ReorderMode.NONE)}
        result = run_workload(db, tiny_workload, configs)
        target = tmp_path / "run.json"
        result.save_json(str(target))
        payload = json.loads(target.read_text())
        assert len(payload["measurements"]) == len(tiny_workload)
        assert payload["measurements"][0]["mode"] == "static"
        assert "bench_queries_total" in payload["metrics"]
        assert not list(tmp_path.glob("*.tmp.*"))


class TestExperiments:
    def test_table1(self, mini_dmv):
        _, summary = mini_dmv
        result = table1_experiment(summary, 0.02)
        report = result.report()
        for name in PAPER_TABLE1:
            assert name in report

    def test_scatter(self, mini_dmv, tiny_workload):
        db, _ = mini_dmv
        result = scatter_experiment(db, tiny_workload)
        assert len(result.pairs) == len(tiny_workload)
        assert result.max_speedup > 0
        assert "total improvement" in result.report("t")

    def test_template_ratio(self, mini_dmv, tiny_workload):
        db, _ = mini_dmv
        result = template_ratio_experiment(db, tiny_workload, ReorderMode.INNER_ONLY)
        assert set(result.ratios) == {1, 2, 3, 4, 5}
        assert "Template 1" in result.report("t")

    def test_overhead(self, mini_dmv, tiny_workload):
        db, _ = mini_dmv
        result = overhead_experiment(db, tiny_workload)
        assert result.inner_overhead >= 0.0
        assert "paper: 0.68%" in result.report()

    def test_window_sweep(self, mini_dmv, tiny_workload):
        db, _ = mini_dmv
        result = window_sweep_experiment(db, tiny_workload, windows=(10, 500))
        assert set(result.series) == {10, 500}
        assert "history window" in result.report()

    def test_ablation(self, mini_dmv, tiny_workload):
        db, _ = mini_dmv
        variants = {
            "static": AdaptiveConfig(mode=ReorderMode.NONE),
            "both": AdaptiveConfig(mode=ReorderMode.BOTH),
        }
        result = ablation_experiment(db, tiny_workload, variants, "static")
        assert set(result.series) == {"static", "both"}
        assert "vs static" in result.report("t")


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 20.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "20.25" in lines[-1]

    def test_format_table_title(self):
        text = format_table(["x"], [[1]], title="T")
        assert text.startswith("T\n")

    def test_scatter_summary_empty(self):
        assert format_scatter_summary([]) == "(no data)"

    def test_scatter_summary_stats(self):
        pairs = [("q1", 100.0, 50.0), ("q2", 10.0, 10.0)]
        text = format_scatter_summary(pairs)
        assert "max speedup: 2.00x (q1)" in text

    def test_to_csv(self):
        text = to_csv(["a", "b"], [[1, "x"]])
        assert text.splitlines() == ["a,b", "1,x"]

    def test_write_csv_atomic(self, tmp_path):
        target = tmp_path / "series.csv"
        write_csv(str(target), ["a"], [[1], [2]])
        assert target.read_text().splitlines() == ["a", "1", "2"]
        assert not list(tmp_path.glob("*.tmp.*"))

    def test_write_json_atomic(self, tmp_path):
        target = tmp_path / "payload.json"
        write_json_atomic(str(target), {"b": 2, "a": [1, 2]})
        assert json.loads(target.read_text()) == {"a": [1, 2], "b": 2}
        assert not list(tmp_path.glob("*.tmp.*"))

    def test_write_json_atomic_keeps_old_file_on_failure(self, tmp_path):
        target = tmp_path / "payload.json"
        write_json_atomic(str(target), {"ok": True})
        with pytest.raises(TypeError):
            write_json_atomic(str(target), {"bad": object()})
        # The original content survives and no temp file is left behind.
        assert json.loads(target.read_text()) == {"ok": True}
        assert not list(tmp_path.glob("*.tmp.*"))

    def test_format_workload_metrics(self, mini_dmv, tiny_workload):
        db, _ = mini_dmv
        configs = {
            "static": AdaptiveConfig(mode=ReorderMode.NONE),
            "both": AdaptiveConfig(mode=ReorderMode.BOTH),
        }
        result = run_workload(db, tiny_workload, configs)
        text = format_workload_metrics(result.metrics)
        assert "workload metrics" in text
        assert "static" in text and "both" in text

    def test_format_workload_metrics_empty(self):
        from repro.obs.metrics import MetricsRegistry

        assert "no workload metrics" in format_workload_metrics(MetricsRegistry())
