"""Tests for the synthetic DMV data generator."""

import pytest

from repro.catalog.statistics import StatisticsLevel
from repro.dmv.generator import (
    MEAN_ACCIDENTS_PER_CAR,
    SECOND_CAR_PROBABILITY,
    DmvGenerator,
    load_dmv,
)


class TestDeterminism:
    def test_same_seed_same_data(self):
        db1, s1 = load_dmv(scale=0.01, seed=3)
        db2, s2 = load_dmv(scale=0.01, seed=3)
        assert s1 == s2
        assert db1.catalog.table("Car").raw_rows() == db2.catalog.table(
            "Car"
        ).raw_rows()

    def test_different_seed_different_data(self):
        _, s1 = load_dmv(scale=0.01, seed=3)
        _, s2 = load_dmv(scale=0.01, seed=4)
        assert s1 != s2

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            DmvGenerator(scale=0)


class TestCardinalities:
    def test_table1_ratios(self, mini_dmv):
        _, summary = mini_dmv
        assert summary.cars / summary.owners == pytest.approx(
            1 + SECOND_CAR_PROBABILITY, rel=0.05
        )
        assert summary.accidents / summary.cars == pytest.approx(
            MEAN_ACCIDENTS_PER_CAR, rel=0.10
        )
        assert summary.demographics == summary.owners

    def test_scale_controls_size(self):
        _, small = load_dmv(scale=0.005)
        _, large = load_dmv(scale=0.01)
        assert large.owners == 2 * small.owners


class TestSchemaAndIndexes:
    def test_base_tables_exist(self, mini_dmv):
        db, _ = mini_dmv
        for name in ("Owner", "Car", "Demographics", "Accidents"):
            assert db.catalog.table(name) is not None

    def test_join_columns_indexed(self, mini_dmv):
        db, _ = mini_dmv
        assert db.catalog.index_on("Owner", "id") is not None
        assert db.catalog.index_on("Car", "ownerid") is not None
        assert db.catalog.index_on("Accidents", "carid") is not None

    def test_country1_deliberately_unindexed(self, mini_dmv):
        db, _ = mini_dmv
        assert db.catalog.index_on("Owner", "country1") is None

    def test_default_stats_are_cardinality_only(self, mini_dmv):
        db, _ = mini_dmv
        stats = db.catalog.stats("Owner")
        assert stats is not None
        assert stats.column("country1") is None

    def test_detailed_stats_option(self):
        db, _ = load_dmv(scale=0.005, stats=StatisticsLevel.DETAILED)
        assert db.catalog.stats("Car").column("make").has_frequent_values

    def test_extended_tables(self):
        db, summary = load_dmv(scale=0.005, extended=True)
        assert summary.locations > 0 and summary.times > 0
        assert db.catalog.index_on("Location", "id") is not None
        assert db.catalog.index_on("Accidents", "locationid") is not None


class TestCorrelations:
    """The four engineered data properties the experiments rely on."""

    @pytest.fixture(scope="class")
    def tables(self):
        db, _ = load_dmv(scale=0.05)
        catalog = db.catalog
        owners = {r[0]: r for r in catalog.table("Owner").raw_rows()}
        cars = catalog.table("Car").raw_rows()
        demo = {r[0]: r for r in catalog.table("Demographics").raw_rows()}
        return owners, cars, demo

    def test_skewed_country_distribution(self, tables):
        owners, _, _ = tables
        from collections import Counter

        counts = Counter(row[3] for row in owners.values())
        us_share = counts["US"] / len(owners)
        assert us_share > 0.25  # Example 3: "almost one third"
        assert counts["US"] > 5 * counts.get("SE", 1)

    def test_model_determines_make(self, tables):
        _, cars, _ = tables
        model_makes = {}
        for car in cars:
            model_makes.setdefault(car[3], set()).add(car[2])
        assert all(len(makes) == 1 for makes in model_makes.values())

    def test_city_determines_country(self, tables):
        owners, _, _ = tables
        city_countries = {}
        for row in owners.values():
            city_countries.setdefault(row[4], set()).add(row[3])
        assert all(len(cs) == 1 for cs in city_countries.values())

    def test_luxury_owners_are_richer(self, tables):
        owners, cars, demo = tables
        lux = [demo[c[1]][1] for c in cars if c[2] == "Mercedes"]
        std = [demo[c[1]][1] for c in cars if c[2] == "Chevrolet"]
        assert sum(lux) / len(lux) > 1.3 * sum(std) / len(std)

    def test_example1_flip_property(self, tables):
        owners, cars, demo = tables
        chev = [c for c in cars if c[2] == "Chevrolet"]
        merc = [c for c in cars if c[2] == "Mercedes"]
        p_de_chev = sum(1 for c in chev if owners[c[1]][3] == "DE") / len(chev)
        p_de_merc = sum(1 for c in merc if owners[c[1]][3] == "DE") / len(merc)
        p_low_chev = sum(1 for c in chev if demo[c[1]][1] < 50_000) / len(chev)
        p_low_merc = sum(1 for c in merc if demo[c[1]][1] < 50_000) / len(merc)
        # Germany filters Chevrolets harder; salary filters Mercedes harder.
        assert p_de_chev < p_de_merc
        assert p_low_chev > 2 * p_low_merc

    def test_accidents_skewed_toward_old_standard_cars(self, tables):
        owners, cars, _ = tables
        del owners
        db, _ = load_dmv(scale=0.05)
        accidents = db.catalog.table("Accidents").raw_rows()
        from collections import Counter

        per_car = Counter(a[1] for a in accidents)
        car_info = {c[0]: c for c in db.catalog.table("Car").raw_rows()}
        lux_makes = {"Mercedes", "BMW", "Audi", "Lexus", "Porsche", "Jaguar"}
        lux_counts = [per_car.get(cid, 0) for cid, c in car_info.items() if c[2] in lux_makes]
        std_counts = [per_car.get(cid, 0) for cid, c in car_info.items() if c[2] not in lux_makes]
        assert sum(std_counts) / len(std_counts) > sum(lux_counts) / len(lux_counts)
