"""E3 — Fig 7: scatter of elapsed work, static vs full adaptive reordering.

Paper shape: ~300 four-table queries from 5 templates; almost all points on
or below the diagonal, speedups up to 7-8x, total-elapsed improvement over
20%, about 30% over the queries whose join order actually changed, and
fewer than 10 queries with small degradation.
"""

from conftest import emit_report

from repro.bench import scatter_experiment


def test_fig7_scatter(benchmark, dmv_db, workload):
    result = benchmark.pedantic(
        lambda: scatter_experiment(dmv_db, workload), rounds=1, iterations=1
    )
    emit_report(
        "fig7_scatter",
        result.report("Fig 7 — switch driving & inner legs vs no switch"),
    )
    # Shape assertions (not absolute numbers).
    assert result.total_improvement > 0.06, "expected clear total improvement"
    assert result.changed_improvement > 0.15, (
        "expected >15% improvement on order-changed queries"
    )
    assert result.max_speedup > 2.0, "expected multi-x best-case speedup"
    # "with a few exceptions, almost all of the queries had significant
    # performance improvements": degradations must stay a small minority.
    assert len(result.degraded) <= max(len(result.pairs) // 15, 10)
