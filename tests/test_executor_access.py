"""Unit tests for RuntimeLeg probe compilation and filtering."""

import pytest

from repro import AdaptiveConfig, ReorderMode
from repro.errors import ExecutionError
from repro.executor.access import RuntimeLeg
from repro.executor.pipeline import PipelineExecutor
from repro.query.predicates import PositionalPredicate
from repro.storage.cursor import ScanOrder

from tests.conftest import build_three_table_db

SQL = (
    "SELECT o.name FROM Owner o, Car c, Demo d "
    "WHERE c.ownerid = o.id AND o.id = d.ownerid AND c.make = 'A'"
)


def make_pipeline(db, sql=SQL, mode=ReorderMode.MONITOR_ONLY):
    plan = db.plan(sql)
    return PipelineExecutor(plan, db.catalog, AdaptiveConfig(mode=mode))


class TestProbeCompilation:
    def test_access_predicate_uses_index(self, three_table_db):
        pipeline = make_pipeline(three_table_db)
        iterator = pipeline.rows()
        next(iterator, None)
        for alias in pipeline.order[1:]:
            config = pipeline.legs[alias].probe_config
            assert config is not None
            assert config.access_index is not None
            assert config.access_predicate is not None

    def test_disconnected_probe_rejected(self, three_table_db):
        pipeline = make_pipeline(three_table_db)
        leg = pipeline.legs["d"]
        with pytest.raises(ExecutionError, match="disconnected"):
            # d shares no equivalence class with... nothing bound at all.
            leg.compile_probe(
                preceding=[],
                graph=pipeline.join_graph,
                schemas=pipeline.schemas,
                sel_of=pipeline.predicate_selectivity,
            )

    def test_probe_without_config_rejected(self, three_table_db):
        pipeline = make_pipeline(three_table_db)
        with pytest.raises(ExecutionError, match="no probe config"):
            pipeline.legs["d"].probe({})


class TestProbeFiltering:
    def test_probe_applies_locals(self, three_table_db):
        pipeline = make_pipeline(three_table_db)
        rows = list(pipeline.rows())
        del rows
        leg = pipeline.legs["c"]
        # After the run, every monitored output row passed make='A'.
        make_slot = leg.schema.position_of("make")
        del make_slot
        assert leg.local_counts[0][0] >= leg.local_counts[0][1]

    def test_positional_predicate_filters_probe(self, three_table_db):
        pipeline = make_pipeline(
            three_table_db,
            "SELECT o.name FROM Owner o, Car c WHERE c.ownerid = o.id",
        )
        iterator = pipeline.rows()
        next(iterator, None)
        driving = pipeline.order[0]
        inner = pipeline.order[1]
        leg = pipeline.legs[inner]
        driving_row = pipeline.legs[driving].table.peek(0)
        binding = {driving: driving_row}
        unfiltered = leg.probe(binding)
        # Install a positional predicate excluding everything.
        leg.positional = PositionalPredicate(
            order=ScanOrder(leg.table), after=(10**9,)
        )
        assert leg.probe(binding) == []
        leg.positional = None
        assert leg.probe(binding) == unfiltered

    def test_monitor_records_per_probe(self, three_table_db):
        pipeline = make_pipeline(three_table_db)
        list(pipeline.rows())
        leg = pipeline.legs[pipeline.order[1]]
        assert leg.monitor.lifetime_incoming > 0
        assert leg.monitor.probe_cost() > 0

    def test_monitoring_disabled_in_none_mode(self, three_table_db):
        pipeline = make_pipeline(three_table_db, mode=ReorderMode.NONE)
        list(pipeline.rows())
        leg = pipeline.legs[pipeline.order[1]]
        assert leg.monitor.lifetime_incoming == 0
        assert pipeline.catalog.meter.monitor_updates == 0


class TestDrivingRole:
    def test_pushed_predicate_detected(self, three_table_db):
        pipeline = make_pipeline(three_table_db)
        leg = pipeline.legs["c"]
        pushed = leg.pushed_driving_predicate()
        assert pushed is not None
        assert "make" in pushed.columns()

    def test_no_pushed_for_table_scan(self, three_table_db):
        pipeline = make_pipeline(
            three_table_db,
            "SELECT o.name FROM Owner o, Car c "
            "WHERE c.ownerid = o.id AND o.name = 'n1'",
        )
        assert pipeline.legs["o"].pushed_driving_predicate() is None

    def test_driving_monitor_created(self, three_table_db):
        pipeline = make_pipeline(three_table_db)
        iterator = pipeline.rows()
        next(iterator, None)
        driving = pipeline.legs[pipeline.order[0]]
        assert driving.driving_monitor is not None
