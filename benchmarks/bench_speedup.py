"""Wall-clock speedup of the batched executor on the six-table DMV workload.

Measures three variants of the same workload:

* ``scalar``  — the row-at-a-time pipeline (the paper's executor),
* ``batched`` — driving-leg batches + merged-descent ``probe_batch``,
* ``cached``  — batched plus the per-leg LRU probe cache.

Variant reps are interleaved (scalar, batched, cached, scalar, ...) and the
minimum per variant is reported, so machine-load drift hits every variant
alike instead of biasing whichever ran last. Every variant's result rows are
checked against scalar's per query — a speedup that changes answers must
fail loudly, not report numbers.

Results go to ``BENCH_speedup.json`` at the repo root (atomic write), so the
perf trajectory of future PRs is recorded. Exits non-zero under ``--check``
if the batched path is slower than scalar by more than 10% — a regression
guard, not a strict speedup gate.

Usage::

    PYTHONPATH=src python benchmarks/bench_speedup.py           # full run
    PYTHONPATH=src python benchmarks/bench_speedup.py --quick --check  # CI
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.bench.runner import write_json_atomic
from repro.core.config import AdaptiveConfig, ReorderMode
from repro.dmv import load_dmv, six_table_workload

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: --check fails when batched exceeds scalar time by more than this factor.
CHECK_TOLERANCE = 1.10


def build_variants(
    mode: ReorderMode, batch_size: int, cache_size: int
) -> dict[str, AdaptiveConfig]:
    return {
        "scalar": AdaptiveConfig(mode=mode),
        "batched": AdaptiveConfig(mode=mode, batched=True, batch_size=batch_size),
        "cached": AdaptiveConfig(
            mode=mode,
            batched=True,
            batch_size=batch_size,
            probe_cache_size=cache_size,
        ),
    }


def measure_mode(db, queries, variants, reps: int) -> dict[str, dict]:
    """Min-of-reps wall seconds per variant, with result verification."""
    best = {name: float("inf") for name in variants}
    meters: dict[str, dict] = {name: {} for name in variants}
    reference: dict[str, list] = {}
    for rep in range(reps):
        for name, config in variants.items():
            total = 0.0
            hits = misses = 0
            for query in queries:
                outcome = db.execute(query.sql, config)
                total += outcome.stats.wall_seconds
                hits += outcome.stats.work.probe_cache_hits
                misses += outcome.stats.work.probe_cache_misses
                if rep == 0:
                    rows = sorted(outcome.rows)
                    expected = reference.setdefault(query.qid, rows)
                    if rows != expected:
                        raise AssertionError(
                            f"{query.qid}: variant {name!r} changed the result set"
                        )
            if total < best[name]:
                best[name] = total
                meters[name] = {
                    "wall_seconds": total,
                    "probe_cache_hits": hits,
                    "probe_cache_misses": misses,
                }
    return meters


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.1, help="DMV scale factor")
    parser.add_argument("--count", type=int, default=6, help="six-table query count")
    parser.add_argument("--reps", type=int, default=7, help="interleaved repetitions")
    parser.add_argument("--batch-size", type=int, default=256)
    parser.add_argument(
        "--cache-size",
        type=int,
        default=4096,
        help="probe-cache capacity for the cached variant",
    )
    parser.add_argument(
        "--adaptive",
        action="store_true",
        help="also measure mode BOTH (adaptive reordering) variants",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small scale/count, static mode only (CI smoke)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"exit 1 if batched > {CHECK_TOLERANCE:.2f}x scalar wall time",
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_speedup.json"),
        help="where to write the JSON payload",
    )
    args = parser.parse_args(argv)

    if args.quick:
        args.scale = min(args.scale, 0.05)
        args.count = min(args.count, 3)
        args.reps = min(args.reps, 3)

    db, summary = load_dmv(scale=args.scale, extended=True)
    queries = six_table_workload(count=args.count)

    modes = [ReorderMode.NONE]
    if args.adaptive and not args.quick:
        modes.append(ReorderMode.BOTH)

    payload: dict = {
        "benchmark": "six_table_speedup",
        "unix_time": time.time(),
        "scale": args.scale,
        "query_count": len(queries),
        "reps": args.reps,
        "batch_size": args.batch_size,
        "cache_size": args.cache_size,
        "modes": {},
    }
    check_failed = False
    for mode in modes:
        variants = build_variants(mode, args.batch_size, args.cache_size)
        meters = measure_mode(db, queries, variants, args.reps)
        scalar = meters["scalar"]["wall_seconds"]
        batched = meters["batched"]["wall_seconds"]
        cached = meters["cached"]["wall_seconds"]
        for name in meters:
            meters[name]["speedup_vs_scalar"] = scalar / meters[name]["wall_seconds"]
        payload["modes"][mode.name.lower()] = meters
        print(
            f"{mode.name.lower():8s} scalar={scalar:.3f}s "
            f"batched={batched:.3f}s ({scalar / batched:.2f}x) "
            f"cached={cached:.3f}s ({scalar / cached:.2f}x)"
        )
        if mode is ReorderMode.NONE and batched > scalar * CHECK_TOLERANCE:
            check_failed = True

    write_json_atomic(args.output, payload)
    print(f"wrote {args.output}")
    if args.check and check_failed:
        print(
            f"CHECK FAILED: batched path slower than scalar by more than "
            f"{(CHECK_TOLERANCE - 1) * 100:.0f}%",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
