"""Telemetry analytics: aggregate the flight-recorder store.

Rolls the per-query :class:`~repro.obs.recorder.FlightRecord` stream up
into the cross-query views the ROADMAP's feedback-loop direction needs:

* **per template** — query count, outcome mix, adaptations per query,
  latency/work aggregates, slow-query count;
* **per (template, leg)** — estimate-error statistics: the measured
  Eq (7) index-join selectivity vs. the optimizer's prior (geometric
  mean + max q-error), which is exactly the input a future feedback
  store in ``catalog/statistics.py`` would consume to stop repeating
  the same mis-costings.

Pure post-processing of recorded data — no execution, no meter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from repro.obs.recorder import FlightRecord


@dataclass
class LegErrorStats:
    """Estimate-error accumulation for one (template, leg) pair."""

    samples: int = 0
    log_q_sum: float = 0.0
    max_q_error: float = 0.0
    s_jp_sum: float = 0.0
    prior: float | None = None

    def add(self, s_jp: float, s_jp_prior: float) -> None:
        q_error = max(s_jp / s_jp_prior, s_jp_prior / s_jp)
        self.samples += 1
        self.log_q_sum += math.log(q_error)
        self.max_q_error = max(self.max_q_error, q_error)
        self.s_jp_sum += s_jp
        self.prior = s_jp_prior

    @property
    def geo_mean_q_error(self) -> float | None:
        if self.samples == 0:
            return None
        return math.exp(self.log_q_sum / self.samples)

    @property
    def mean_s_jp(self) -> float | None:
        if self.samples == 0:
            return None
        return self.s_jp_sum / self.samples

    def as_dict(self) -> dict[str, Any]:
        return {
            "samples": self.samples,
            "geo_mean_q_error": self.geo_mean_q_error,
            "max_q_error": self.max_q_error if self.samples else None,
            "mean_s_jp": self.mean_s_jp,
            "optimizer_prior": self.prior,
        }


@dataclass
class TemplateSummary:
    """Aggregates over every recorded run of one query template."""

    template: str
    queries: int = 0
    outcomes: dict[str, int] = field(default_factory=dict)
    events_total: int = 0
    events_by_kind: dict[str, int] = field(default_factory=dict)
    checks_total: int = 0
    checks_applied: int = 0
    slow_total: int = 0
    wall_ms_sum: float = 0.0
    wall_ms_max: float = 0.0
    work_sum: float = 0.0
    rows_sum: int = 0
    leg_errors: dict[str, LegErrorStats] = field(default_factory=dict)
    final_orders: dict[str, int] = field(default_factory=dict)

    def add(self, record: FlightRecord) -> None:
        self.queries += 1
        self.outcomes[record.outcome] = self.outcomes.get(record.outcome, 0) + 1
        self.events_total += len(record.events)
        for event in record.events:
            kind = event.get("kind", "?")
            self.events_by_kind[kind] = self.events_by_kind.get(kind, 0) + 1
        self.checks_total += len(record.decisions)
        self.checks_applied += sum(
            1 for decision in record.decisions if decision.applied
        )
        if record.slow:
            self.slow_total += 1
        self.wall_ms_sum += record.wall_ms
        self.wall_ms_max = max(self.wall_ms_max, record.wall_ms)
        self.work_sum += record.work_units
        self.rows_sum += record.rows
        if record.final_order:
            key = " -> ".join(record.final_order)
            self.final_orders[key] = self.final_orders.get(key, 0) + 1
        for alias, leg in record.legs.items():
            s_jp = leg.get("s_jp")
            prior = leg.get("s_jp_prior")
            if s_jp and prior and s_jp > 0 and prior > 0:
                self.leg_errors.setdefault(alias, LegErrorStats()).add(
                    s_jp, prior
                )

    @property
    def adaptations_per_query(self) -> float:
        return self.events_total / self.queries if self.queries else 0.0

    @property
    def mean_wall_ms(self) -> float:
        return self.wall_ms_sum / self.queries if self.queries else 0.0

    @property
    def mean_work(self) -> float:
        return self.work_sum / self.queries if self.queries else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "template": self.template,
            "queries": self.queries,
            "outcomes": dict(sorted(self.outcomes.items())),
            "adaptations_per_query": round(self.adaptations_per_query, 4),
            "events_by_kind": dict(sorted(self.events_by_kind.items())),
            "checks_total": self.checks_total,
            "checks_applied": self.checks_applied,
            "slow_total": self.slow_total,
            "mean_wall_ms": round(self.mean_wall_ms, 3),
            "max_wall_ms": round(self.wall_ms_max, 3),
            "mean_work_units": round(self.mean_work, 3),
            "rows_total": self.rows_sum,
            "final_orders": dict(
                sorted(self.final_orders.items(), key=lambda kv: -kv[1])
            ),
            "leg_estimate_errors": {
                alias: stats.as_dict()
                for alias, stats in sorted(self.leg_errors.items())
            },
        }


class TelemetryAnalytics:
    """The aggregated view over a list of flight records."""

    def __init__(self) -> None:
        self.templates: dict[str, TemplateSummary] = {}
        self.records_total = 0

    @classmethod
    def from_records(
        cls, records: list[FlightRecord]
    ) -> "TelemetryAnalytics":
        analytics = cls()
        for record in records:
            analytics.add(record)
        return analytics

    def add(self, record: FlightRecord) -> None:
        self.records_total += 1
        summary = self.templates.get(record.template)
        if summary is None:
            summary = TemplateSummary(template=record.template)
            self.templates[record.template] = summary
        summary.add(record)

    # -- feedback-store input ------------------------------------------
    def per_template_selectivities(self) -> dict[str, dict[str, float]]:
        """template -> leg -> mean measured Eq (7) selectivity.

        The cross-query feedback loop (ROADMAP) consumes exactly this:
        observed join selectivities per template, to correct the static
        optimizer's priors over a query sequence.
        """
        out: dict[str, dict[str, float]] = {}
        for template, summary in self.templates.items():
            legs = {
                alias: stats.mean_s_jp
                for alias, stats in summary.leg_errors.items()
                if stats.mean_s_jp is not None
            }
            if legs:
                out[template] = legs
        return out

    # -- export --------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        return {
            "records_total": self.records_total,
            "templates": {
                template: summary.as_dict()
                for template, summary in sorted(self.templates.items())
            },
        }

    def render(self) -> str:
        if self.records_total == 0:
            return "(no telemetry records)"
        lines = [
            f"TELEMETRY ANALYTICS — {self.records_total} record(s), "
            f"{len(self.templates)} template(s)",
        ]
        for template, summary in sorted(
            self.templates.items(), key=lambda kv: -kv[1].queries
        ):
            shown = template if len(template) <= 72 else template[:69] + "..."
            lines.append("")
            lines.append(f"template: {shown}")
            lines.append(
                f"  queries={summary.queries} "
                f"outcomes={dict(sorted(summary.outcomes.items()))} "
                f"slow={summary.slow_total}"
            )
            lines.append(
                f"  adaptations/query={summary.adaptations_per_query:.2f} "
                f"({dict(sorted(summary.events_by_kind.items()))}); "
                f"checks {summary.checks_applied}/{summary.checks_total} "
                f"applied"
            )
            lines.append(
                f"  wall mean={summary.mean_wall_ms:.1f}ms "
                f"max={summary.wall_ms_max:.1f}ms  "
                f"work mean={summary.mean_work:,.0f}"
            )
            if summary.leg_errors:
                lines.append("  estimate errors (q-error of Eq 7 vs prior):")
                for alias, stats in sorted(summary.leg_errors.items()):
                    lines.append(
                        f"    {alias:<12s} geo-mean="
                        f"{stats.geo_mean_q_error:.2f} "
                        f"max={stats.max_q_error:.2f} "
                        f"(n={stats.samples})"
                    )
            if len(summary.final_orders) > 1:
                lines.append("  final orders:")
                for order, count in sorted(
                    summary.final_orders.items(), key=lambda kv: -kv[1]
                ):
                    lines.append(f"    {count:>4d}x {order}")
        return "\n".join(lines)
