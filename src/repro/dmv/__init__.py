"""The synthetic DMV data set and experimental query workloads (Sec 5)."""

from repro.dmv.generator import DmvGenerator, DmvSummary, load_dmv
from repro.dmv.schema import create_dmv_schema
from repro.dmv.templates import (
    WorkloadQuery,
    four_table_workload,
    six_table_workload,
    template_count,
)

__all__ = [
    "DmvGenerator",
    "DmvSummary",
    "WorkloadQuery",
    "create_dmv_schema",
    "four_table_workload",
    "load_dmv",
    "six_table_workload",
    "template_count",
]
