"""A small metrics registry: counters, gauges, fixed-bucket histograms.

The naming convention follows the Prometheus exposition style
(``snake_case``, ``_total`` suffix for counters, one optional label per
metric). Metrics are plain Python objects — there is no exporter process;
the registry is attached to a :class:`~repro.db.QueryResult` (or a
workload run) and rendered as text or dictionaries.

Metric catalogue (what the engine records when a registry is armed):

=================================  ======  ===========================================
name                               type    meaning
=================================  ======  ===========================================
``query_rows_emitted_total``       counter rows the pipeline emitted (pre post-process)
``driving_rows_total``             counter rows produced by the driving leg
``leg_rows_in_total{leg}``         counter probe invocations (incoming outer rows)
``leg_index_matches_total{leg}``   counter index/hash/scan candidates at the leg
``leg_rows_out_total{leg}``        counter rows surviving all of the leg's predicates
``scan_rows_total{leg}``           counter driving-scan rows fetched by the leg
``scan_rows_survived_total{leg}``  counter driving-scan rows surviving residual locals
``suffix_depletions_total{pos}``   counter depleted-state entries at pipeline position
``reorder_checks_total{outcome}``  counter ``inner-reorder`` / ``inner-keep`` /
                                           ``driving-switch`` / ``driving-keep``
``adaptation_events_total{kind}``  counter applied events by kind (incl. ``degraded``)
``fault_retries_total{site}``      counter transient-fault retries by injection site
``leg_position{leg}``              gauge   the leg's current pipeline position (0=driving)
``probe_index_matches{leg}``       histo   per-probe candidate counts (fan-out shape)
``selectivity_error_ratio{leg}``   histo   measured Eq (7) selectivity / optimizer prior
``storage_table_bytes{table}``     gauge   resident bytes of one table's storage
``storage_table_rows{table}``      gauge   row count of one table
``storage_total_bytes``            gauge   resident bytes across all tables
``storage_table_count``            gauge   number of tables in the catalog
``storage_backend_info{backend}``  gauge   1 for the active storage backend
=================================  ======  ===========================================
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Any, Iterator, Mapping

#: Fan-out shaped buckets for per-probe index-match counts.
MATCH_BUCKETS = (0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 500.0)

#: Ratio buckets for measured/estimated selectivity (1.0 = perfect prior).
RATIO_BUCKETS = (0.1, 0.25, 0.5, 0.8, 1.25, 2.0, 4.0, 10.0)


class Counter:
    """A monotonically increasing value, optionally split by one label."""

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: dict[str, float] = {}

    def inc(self, label: str = "", amount: float = 1.0) -> None:
        self._values[label] = self._values.get(label, 0.0) + amount

    def value(self, label: str = "") -> float:
        return self._values.get(label, 0.0)

    @property
    def total(self) -> float:
        return sum(self._values.values())

    def items(self) -> Iterator[tuple[str, float]]:
        return iter(sorted(self._values.items()))

    def as_dict(self) -> dict[str, float]:
        return dict(sorted(self._values.items()))


class Gauge:
    """A point-in-time value, optionally split by one label."""

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: dict[str, float] = {}

    def set(self, value: float, label: str = "") -> None:
        self._values[label] = value

    def value(self, label: str = "") -> float | None:
        return self._values.get(label)

    def items(self) -> Iterator[tuple[str, float]]:
        return iter(sorted(self._values.items()))

    def as_dict(self) -> dict[str, float]:
        return dict(sorted(self._values.items()))


class Histogram:
    """Fixed-boundary cumulative-bucket histogram with one optional label.

    ``boundaries`` are upper bounds of the finite buckets; one implicit
    ``+Inf`` bucket is always appended, so every observation lands
    somewhere and ``count`` equals the sum of bucket increments.
    """

    def __init__(
        self, name: str, boundaries: tuple[float, ...], help: str = ""
    ) -> None:
        if not boundaries or list(boundaries) != sorted(boundaries):
            raise ValueError("histogram boundaries must be sorted and non-empty")
        self.name = name
        self.help = help
        self.boundaries = tuple(float(b) for b in boundaries)
        # label -> [per-bucket counts..., +Inf bucket]
        self._buckets: dict[str, list[int]] = {}
        self._sums: dict[str, float] = {}
        self._counts: dict[str, int] = {}

    def observe(self, value: float, label: str = "") -> None:
        if not math.isfinite(value):
            # NaN would poison every later quantile/mean and ±inf the sum;
            # non-finite observations are dropped (count stays exact for
            # everything actually measurable).
            return
        buckets = self._buckets.get(label)
        if buckets is None:
            buckets = [0] * (len(self.boundaries) + 1)
            self._buckets[label] = buckets
        buckets[bisect_left(self.boundaries, value)] += 1
        self._sums[label] = self._sums.get(label, 0.0) + value
        self._counts[label] = self._counts.get(label, 0) + 1

    def count(self, label: str = "") -> int:
        return self._counts.get(label, 0)

    def sum(self, label: str = "") -> float:
        return self._sums.get(label, 0.0)

    def mean(self, label: str = "") -> float | None:
        count = self.count(label)
        if count == 0:
            return None
        return self.sum(label) / count

    def quantile(self, q: float, label: str = "") -> float | None:
        """Estimate the *q*-quantile (0 < q <= 1) from the bucket counts.

        Uses linear interpolation inside the bucket where the cumulative
        count crosses ``q * count`` (the Prometheus ``histogram_quantile``
        rule): the first finite bucket interpolates from 0, and a target
        landing in the ``+Inf`` bucket is clamped to the highest finite
        boundary — an estimator, not an exact order statistic. Returns
        None when nothing was observed.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError("quantile q must be in (0, 1]")
        total = self.count(label)
        if total == 0:
            return None
        counts = self._buckets[label]
        target = q * total
        cumulative = 0
        for i, bucket_count in enumerate(counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                if i >= len(self.boundaries):
                    return self.boundaries[-1]
                low = self.boundaries[i - 1] if i > 0 else 0.0
                high = self.boundaries[i]
                fraction = (target - cumulative) / bucket_count
                return low + (high - low) * fraction
            cumulative += bucket_count
        return self.boundaries[-1]  # pragma: no cover - defensive

    def buckets(self, label: str = "") -> dict[str, int]:
        """Bucket counts keyed by ``le`` upper bound (non-cumulative)."""
        counts = self._buckets.get(label, [0] * (len(self.boundaries) + 1))
        keys = [f"{b:g}" for b in self.boundaries] + ["+Inf"]
        return dict(zip(keys, counts))

    def labels(self) -> list[str]:
        return sorted(self._buckets)

    def as_dict(self) -> dict[str, Any]:
        return {
            label: {
                "count": self.count(label),
                "sum": self.sum(label),
                "buckets": self.buckets(label),
            }
            for label in self.labels()
        }


class MetricsRegistry:
    """Get-or-create home for the metric objects of one measured scope."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        metric = self._get_or_create(name, lambda: Counter(name, help))
        if not isinstance(metric, Counter):
            raise TypeError(f"metric {name!r} already registered as {type(metric).__name__}")
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        metric = self._get_or_create(name, lambda: Gauge(name, help))
        if not isinstance(metric, Gauge):
            raise TypeError(f"metric {name!r} already registered as {type(metric).__name__}")
        return metric

    def histogram(
        self, name: str, boundaries: tuple[float, ...], help: str = ""
    ) -> Histogram:
        metric = self._get_or_create(name, lambda: Histogram(name, boundaries, help))
        if not isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} already registered as {type(metric).__name__}")
        return metric

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def as_dict(self) -> dict[str, Any]:
        """A JSON-safe snapshot of every metric in the registry."""
        return {name: self._metrics[name].as_dict() for name in self.names()}

    def render_prometheus(self, label_name: str = "label") -> str:
        """Prometheus text exposition (``# HELP`` / ``# TYPE`` / series).

        Histograms render the standard cumulative ``_bucket{le=...}``
        series plus ``_sum`` and ``_count``. Every metric here carries at
        most one label dimension; *label_name* names it on the wire.
        """

        def escape(value: str) -> str:
            return (
                value.replace("\\", "\\\\")
                .replace('"', '\\"')
                .replace("\n", "\\n")
            )

        def series(name: str, label: str, extra: str = "") -> str:
            parts = []
            if label:
                parts.append(f'{label_name}="{escape(label)}"')
            if extra:
                parts.append(extra)
            return f"{name}{{{','.join(parts)}}}" if parts else name

        lines: list[str] = []
        for name in self.names():
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            if isinstance(metric, Counter):
                lines.append(f"# TYPE {name} counter")
                for label, value in metric.items():
                    lines.append(f"{series(name, label)} {value:g}")
            elif isinstance(metric, Gauge):
                lines.append(f"# TYPE {name} gauge")
                for label, value in metric.items():
                    lines.append(f"{series(name, label)} {value:g}")
            else:
                lines.append(f"# TYPE {name} histogram")
                for label in metric.labels():
                    cumulative = 0
                    for le, count in metric.buckets(label).items():
                        cumulative += count
                        bucket = series(name + "_bucket", label, f'le="{le}"')
                        lines.append(f"{bucket} {cumulative}")
                    lines.append(
                        f"{series(name + '_sum', label)} {metric.sum(label):g}"
                    )
                    lines.append(
                        f"{series(name + '_count', label)} {metric.count(label)}"
                    )
        return "\n".join(lines) + "\n" if lines else ""

    def render(self) -> str:
        """Plain-text exposition, one ``name{label} value`` line per series."""
        lines: list[str] = []
        for name in self.names():
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# {name}: {metric.help}")
            if isinstance(metric, (Counter, Gauge)):
                for label, value in metric.items():
                    series = f"{name}{{{label}}}" if label else name
                    rendered = f"{value:g}"
                    lines.append(f"{series} {rendered}")
            else:
                for label in metric.labels():
                    series = f"{name}{{{label}}}" if label else name
                    lines.append(
                        f"{series} count={metric.count(label)} "
                        f"sum={metric.sum(label):g} "
                        f"mean={metric.mean(label):.4g}"
                    )
                    bucket_line = " ".join(
                        f"le={le}:{count}"
                        for le, count in metric.buckets(label).items()
                        if count
                    )
                    if bucket_line:
                        lines.append(f"  {bucket_line}")
        return "\n".join(lines) if lines else "(no metrics recorded)"


def record_storage_gauges(
    registry: MetricsRegistry, storage: Mapping[str, Any]
) -> None:
    """Fold a ``Database.storage_stats()`` payload into footprint gauges.

    Per-table resident bytes and row counts become labelled gauges; the
    catalog-wide totals and the active backend (Prometheus info-style,
    value 1 with the backend name as the label) ride alongside, so one
    scrape shows where the columnar layout's memory savings land.
    """
    table_bytes = registry.gauge(
        "storage_table_bytes", "resident bytes of one table's storage"
    )
    table_rows = registry.gauge("storage_table_rows", "row count of one table")
    kernel_bytes = registry.gauge(
        "storage_kernel_bytes",
        "materialized kernel-plan bytes (sidecars + group kernels) per table",
    )
    for entry in storage.get("per_table", ()):
        table_bytes.set(float(entry["bytes"]), entry["table"])
        table_rows.set(float(entry["rows"]), entry["table"])
        if "kernel_bytes" in entry:
            kernel_bytes.set(float(entry["kernel_bytes"]), entry["table"])
    registry.gauge(
        "storage_total_bytes", "resident bytes across all tables"
    ).set(float(storage.get("total_bytes", 0)))
    registry.gauge(
        "storage_kernel_plan_bytes",
        "materialized kernel-plan bytes across all tables (COW-shared by "
        "parallel workers)",
    ).set(float(storage.get("kernel_plan_bytes", 0)))
    registry.gauge(
        "storage_table_count", "number of tables in the catalog"
    ).set(float(storage.get("table_count", 0)))
    registry.gauge(
        "storage_backend_info", "1 for the active storage backend"
    ).set(1.0, str(storage.get("backend", "unknown")))


def merge_counter(target: Mapping[str, float], source: Counter) -> dict[str, float]:
    """Sum *source*'s series into a plain dict copy of *target*."""
    merged = dict(target)
    for label, value in source.items():
        merged[label] = merged.get(label, 0.0) + value
    return merged
