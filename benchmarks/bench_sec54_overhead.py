"""E6 — Sec 5.4: monitoring and reorder-checking overhead.

Paper numbers: on queries whose join order is never changed, the average
overhead of monitoring + checking was 0.68% (inner legs) and 0.67%
(driving legs) at check frequency c=10. The work-unit weights of monitor
updates and reorder checks are calibrated to land in this regime; the bench
verifies the calibration holds on the full workload.
"""

from conftest import emit_report

from repro.bench import overhead_experiment


def test_sec54_overhead(benchmark, dmv_db, workload):
    result = benchmark.pedantic(
        lambda: overhead_experiment(dmv_db, workload), rounds=1, iterations=1
    )
    emit_report("sec54_overhead", result.report())
    assert result.unchanged_inner > 0 and result.unchanged_driving > 0
    assert 0.0 <= result.inner_overhead < 0.02, (
        f"inner overhead {result.inner_overhead:.4f} out of the paper's regime"
    )
    assert 0.0 <= result.driving_overhead < 0.02, (
        f"driving overhead {result.driving_overhead:.4f} out of the paper's regime"
    )
