"""Run-time monitors (Sec 4.3).

Each leg carries a :class:`LegMonitor` that observes the row counts flowing
through it over a sliding **history window** of the last ``w`` incoming rows
(Sec 4.3.5). From those counters the controller derives:

* combined residual local/join selectivity ``S_LPR = O_n / I_2`` (Eq 6) —
  measured on the *conjunction*, so cross-column correlation is captured
  exactly (the Example 2 property);
* index join-predicate selectivity ``S_JP = O_1 / (I_1 * C(T))`` (Eq 7);
* join cardinality ``JC(T) = O(T) / I(T)`` (Eq 11);
* measured probe cost ``PC(T)`` = work units per incoming row.

The driving leg has no "incoming rows"; :class:`DrivingMonitor` instead
tracks scan progress (entries read, rows surviving locals) so the controller
can estimate the *remaining* work of the current plan (Fig 3 step 2) and the
residual local selectivity of the leg.

Storage layout: both monitors keep their window in preallocated **ring
buffers** (three parallel scalar arrays indexed by ``lifetime % size``)
rather than a deque of sample objects. A single observation is one slot
overwrite with no allocation, and :meth:`SlidingWindow.observe_many` /
:meth:`DrivingMonitor.observe_many` fold a whole executor chunk into the
window in one call. The running sums use the exact same
add-new-then-subtract-evicted float arithmetic as one-at-a-time updates, so
windowed estimates — and therefore adaptation decisions and recorded
events — are bit-identical whether observations arrive per row or per
chunk.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass
class ProbeSample:
    """Counters for one incoming outer row at an inner leg."""

    index_matches: int
    output_rows: int
    work_units: float


class SlidingWindow:
    """Aggregates probe counters over the last ``w`` samples (ring buffer)."""

    __slots__ = (
        "size",
        "_matches",
        "_output",
        "_work",
        "_sum_matches",
        "_sum_output",
        "_sum_work",
        "lifetime_samples",
    )

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("window size must be >= 1")
        self.size = size
        self._matches = [0] * size
        self._output = [0] * size
        self._work = [0.0] * size
        self._sum_matches = 0
        self._sum_output = 0
        self._sum_work = 0.0
        self.lifetime_samples = 0

    def observe(
        self, index_matches: int, output_rows: int, work_units: float
    ) -> None:
        """Fold one sample into the window (O(1), no allocation)."""
        slot = self.lifetime_samples % self.size
        # Same arithmetic order as the historical deque implementation:
        # add the new sample, then evict the expired one — float sums stay
        # bit-identical to per-row scalar monitoring.
        self._sum_matches += index_matches
        self._sum_output += output_rows
        self._sum_work += work_units
        if self.lifetime_samples >= self.size:
            self._sum_matches -= self._matches[slot]
            self._sum_output -= self._output[slot]
            self._sum_work -= self._work[slot]
        self._matches[slot] = index_matches
        self._output[slot] = output_rows
        self._work[slot] = work_units
        self.lifetime_samples += 1

    def observe_many(
        self, samples: Iterable[tuple[int, int, float]]
    ) -> None:
        """Fold a chunk of (matches, output, work) samples into the window.

        One call per executor chunk amortizes attribute lookups and method
        dispatch over the whole chunk; the per-slot arithmetic is identical
        to calling :meth:`observe` in a loop, so estimates stay exact.
        """
        matches_ring = self._matches
        output_ring = self._output
        work_ring = self._work
        size = self.size
        lifetime = self.lifetime_samples
        sum_matches = self._sum_matches
        sum_output = self._sum_output
        sum_work = self._sum_work
        for index_matches, output_rows, work_units in samples:
            slot = lifetime % size
            sum_matches += index_matches
            sum_output += output_rows
            sum_work += work_units
            if lifetime >= size:
                sum_matches -= matches_ring[slot]
                sum_output -= output_ring[slot]
                sum_work -= work_ring[slot]
            matches_ring[slot] = index_matches
            output_ring[slot] = output_rows
            work_ring[slot] = work_units
            lifetime += 1
        self._sum_matches = sum_matches
        self._sum_output = sum_output
        self._sum_work = sum_work
        self.lifetime_samples = lifetime

    def add(self, sample: ProbeSample) -> None:
        """Compatibility shim for sample-object callers."""
        self.observe(sample.index_matches, sample.output_rows, sample.work_units)

    def __len__(self) -> int:
        return min(self.lifetime_samples, self.size)

    @property
    def sum_matches(self) -> int:
        return self._sum_matches

    @property
    def sum_output(self) -> int:
        return self._sum_output

    @property
    def sum_work(self) -> float:
        return self._sum_work


class AggregatedWindow:
    """Chunk-granular sliding window: one weighted entry per executor chunk.

    The amortized (``monitor_granularity="chunk"``) twin of
    :class:`SlidingWindow`: :meth:`observe_chunk` folds a whole chunk of
    ``n`` samples into the window as a single ``(n, sums)`` aggregate — an
    O(1) ring update per *chunk* rather than per sample. Eviction drops
    whole aggregates, so the window covers the most recent chunks whose
    sample count is at least ``size``; it can transiently hold up to one
    chunk more than ``size`` samples. Estimates are therefore within the
    skew of one chunk of a per-sample window — the documented accuracy
    contract of the fast adaptive mode.

    When every aggregate has ``n == 1`` (e.g. the scalar fallback path
    observing per row) the eviction boundary is exact and estimates match
    :class:`SlidingWindow` bit for bit.
    """

    __slots__ = (
        "size",
        "_chunks",
        "_sum_matches",
        "_sum_output",
        "_sum_work",
        "_samples",
        "lifetime_samples",
    )

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("window size must be >= 1")
        self.size = size
        # (n, matches, output, work) aggregates, oldest first.
        self._chunks: deque[tuple[int, int, int, float]] = deque()
        self._sum_matches = 0
        self._sum_output = 0
        self._sum_work = 0.0
        self._samples = 0
        self.lifetime_samples = 0

    def observe_chunk(
        self, n: int, matches: int, output_rows: int, work_units: float
    ) -> None:
        """Fold a chunk of ``n`` samples in as one aggregate (O(1))."""
        if n <= 0:
            return
        chunks = self._chunks
        chunks.append((n, matches, output_rows, work_units))
        self._sum_matches += matches
        self._sum_output += output_rows
        self._sum_work += work_units
        samples = self._samples + n
        size = self.size
        while samples - chunks[0][0] >= size:
            old_n, old_m, old_o, old_w = chunks.popleft()
            samples -= old_n
            self._sum_matches -= old_m
            self._sum_output -= old_o
            self._sum_work -= old_w
        self._samples = samples
        self.lifetime_samples += n

    def observe(
        self, index_matches: int, output_rows: int, work_units: float
    ) -> None:
        """Single-sample observation (an ``n=1`` aggregate)."""
        self.observe_chunk(1, index_matches, output_rows, work_units)

    def observe_many(
        self, samples: Iterable[tuple[int, int, float]]
    ) -> None:
        """Fold per-sample records in as one combined aggregate."""
        n = 0
        matches = 0
        output = 0
        work = 0.0
        for index_matches, output_rows, work_units in samples:
            n += 1
            matches += index_matches
            output += output_rows
            work += work_units
        self.observe_chunk(n, matches, output, work)

    def add(self, sample: ProbeSample) -> None:
        """Compatibility shim for sample-object callers."""
        self.observe(sample.index_matches, sample.output_rows, sample.work_units)

    def __len__(self) -> int:
        return self._samples

    @property
    def sum_matches(self) -> int:
        return self._sum_matches

    @property
    def sum_output(self) -> int:
        return self._sum_output

    @property
    def sum_work(self) -> float:
        return self._sum_work


class LegMonitor:
    """Windowed monitor for one leg acting as an inner leg."""

    __slots__ = ("window", "_pending")

    def __init__(self, window: int, aggregated: bool = False) -> None:
        self.window: SlidingWindow | AggregatedWindow = (
            AggregatedWindow(window) if aggregated else SlidingWindow(window)
        )
        # Deferred chunk fold: (n, matches, output, work) accumulated by
        # defer_chunk() and applied as ONE AggregatedWindow aggregate by
        # flush_chunk() at the next driving-chunk boundary.
        self._pending: list = [0, 0, 0, 0.0]

    @property
    def incoming_rows(self) -> int:
        return len(self.window)

    @property
    def lifetime_incoming(self) -> int:
        return self.window.lifetime_samples

    def record_probe(
        self, index_matches: int, output_rows: int, work_units: float
    ) -> None:
        self.window.observe(index_matches, output_rows, work_units)

    def observe_many(
        self, samples: Iterable[tuple[int, int, float]]
    ) -> None:
        """Bulk twin of :meth:`record_probe` for chunked executors."""
        self.window.observe_many(samples)

    def observe_chunk(
        self, n: int, matches: int, output_rows: int, work_units: float
    ) -> None:
        """Amortized chunk observation (:class:`AggregatedWindow` only)."""
        self.window.observe_chunk(n, matches, output_rows, work_units)

    def defer_chunk(
        self, n: int, matches: int, output_rows: int, work_units: float
    ) -> None:
        """Accumulate a partial chunk fold without touching the window.

        Chunk-granularity executors probe a leg several times per driving
        chunk (one refill per parent batch); deferring lets the executor
        fold the whole driving chunk into the window as ONE aggregate at
        the chunk boundary, which is exactly what the vectorized adaptive
        cascade computes per leg per chunk. The work constants are all
        exact binary fractions (quarter units), so regrouping the float
        sums here is bit-exact against any other grouping.
        """
        pending = self._pending
        pending[0] += n
        pending[1] += matches
        pending[2] += output_rows
        pending[3] += work_units

    def flush_chunk(self) -> None:
        """Apply the deferred fold as one window aggregate (no-op if empty)."""
        pending = self._pending
        if pending[0] == 0:
            return
        self.window.observe_chunk(pending[0], pending[1], pending[2], pending[3])
        pending[0] = 0
        pending[1] = 0
        pending[2] = 0
        pending[3] = 0.0

    def pending_chunk(self) -> tuple[int, int, int, float]:
        """The deferred (not yet flushed) chunk fold as an immutable tuple.

        Parallel snapshots read this so a worker interrupted between
        ``defer_chunk`` and ``flush_chunk`` (e.g. a barrier landing inside
        a driving chunk) ships its partial fold to the coordinator, where
        it is re-applied in the serial fold order — window contents first,
        pending aggregate after (see ``monitor_merge.inject_into_host``).
        """
        pending = self._pending
        return (pending[0], pending[1], pending[2], pending[3])

    def reset(self) -> None:
        """Drop history (used when the leg's probe configuration changes).

        Type-preserving: an aggregated window resets to an aggregated
        window, so the configured monitor granularity survives probe
        recompiles (reorders, driving switches).
        """
        self.window = type(self.window)(self.window.size)
        self._pending = [0, 0, 0, 0.0]

    # -- derived estimates (None when no data yet) -----------------------
    def join_cardinality(self) -> float | None:
        """Eq (11): JC = O / I over the window."""
        if len(self.window) == 0:
            return None
        return self.window.sum_output / len(self.window)

    def index_match_rate(self) -> float | None:
        """Average index matches per incoming row (O_1 / I_1)."""
        if len(self.window) == 0:
            return None
        return self.window.sum_matches / len(self.window)

    def index_join_selectivity(self, base_cardinality: int) -> float | None:
        """Eq (7): S_JP of the index-access join predicate."""
        rate = self.index_match_rate()
        if rate is None or base_cardinality <= 0:
            return None
        return rate / base_cardinality

    def residual_selectivity(self) -> float | None:
        """Eq (6)/(8): combined selectivity of all residual predicates."""
        if self.window.sum_matches == 0:
            return None
        return self.window.sum_output / self.window.sum_matches

    def probe_cost(self) -> float | None:
        """Measured PC: work units per incoming row, over the window."""
        if len(self.window) == 0:
            return None
        return self.window.sum_work / len(self.window)


class DrivingMonitor:
    """Scan-progress monitor for the leg currently driving the pipeline."""

    __slots__ = (
        "window",
        "_survived_ring",
        "entries_scanned",
        "rows_survived",
        "_recent_scanned",
        "_recent_survived",
    )

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError("window size must be >= 1")
        self.window = window
        self._survived_ring = [0] * window
        self.entries_scanned = 0       # rows out of the access method
        self.rows_survived = 0         # rows surviving residual locals
        self._recent_scanned = 0
        self._recent_survived = 0

    def record_scanned(self, survived: bool) -> None:
        lived = 1 if survived else 0
        slot = self.entries_scanned % self.window
        if self.entries_scanned >= self.window:
            self._recent_survived -= self._survived_ring[slot]
        else:
            self._recent_scanned += 1
        self._survived_ring[slot] = lived
        self._recent_survived += lived
        self.entries_scanned += 1
        self.rows_survived += lived

    def observe_many(self, survived_flags: Sequence[bool]) -> None:
        """Fold a chunk of per-row survival flags into the window.

        Exact bulk twin of calling :meth:`record_scanned` once per flag —
        the ring keeps each row's flag so mid-chunk window boundaries
        evict precisely the rows a scalar run would have evicted.
        """
        ring = self._survived_ring
        window = self.window
        scanned = self.entries_scanned
        recent_survived = self._recent_survived
        recent_scanned = self._recent_scanned
        survived_total = 0
        for survived in survived_flags:
            lived = 1 if survived else 0
            slot = scanned % window
            if scanned >= window:
                recent_survived -= ring[slot]
            else:
                recent_scanned += 1
            ring[slot] = lived
            recent_survived += lived
            scanned += 1
            survived_total += lived
        self.entries_scanned = scanned
        self.rows_survived += survived_total
        self._recent_scanned = recent_scanned
        self._recent_survived = recent_survived

    def residual_selectivity(self) -> float | None:
        """Windowed S_LPR of the driving leg's residual local predicates."""
        if self._recent_scanned == 0:
            return None
        return self._recent_survived / self._recent_scanned
