"""Workload runner: execute queries under several reorder modes and measure.

The primary metric is deterministic **work units** (see
:mod:`repro.storage.counters`); wall-clock seconds are recorded as a
secondary metric. One :class:`QueryMeasurement` per (query, mode).
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Any, Iterable, Mapping

from repro.core.config import AdaptiveConfig, ReorderMode
from repro.db import Database
from repro.dmv.templates import WorkloadQuery
from repro.obs.metrics import MetricsRegistry

#: Histogram buckets for per-query work units, spanning the DMV scales
#: the experiments run at (hundreds of units at scale 0.005, millions at 1.0).
WORK_BUCKETS = (
    100.0, 500.0, 1_000.0, 5_000.0, 10_000.0,
    50_000.0, 100_000.0, 500_000.0, 1_000_000.0,
)


def write_json_atomic(path: str, payload: Any) -> None:
    """Write *payload* as JSON via a temp file + ``os.replace``.

    A crash mid-write leaves either the old file or nothing — never a
    truncated JSON document that a later analysis run would choke on.
    """
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


@dataclass(frozen=True)
class QueryMeasurement:
    """Measurements of one query under one mode."""

    qid: str
    template: int
    mode: str
    work: float
    execution_work: float
    adaptation_work: float
    wall_seconds: float
    rows: int
    inner_reorders: int
    driving_switches: int
    order_changed: bool

    @property
    def total_switches(self) -> int:
        return self.inner_reorders + self.driving_switches

    def as_dict(self) -> dict[str, Any]:
        return asdict(self)


@dataclass
class WorkloadResult:
    """All measurements for one workload run, indexed by (qid, mode)."""

    measurements: list[QueryMeasurement] = field(default_factory=list)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    def add(self, measurement: QueryMeasurement) -> None:
        self.measurements.append(measurement)
        self._record(measurement)

    def _record(self, m: QueryMeasurement) -> None:
        metrics = self.metrics
        metrics.counter(
            "bench_queries_total", "query executions by mode"
        ).inc(m.mode)
        metrics.counter(
            "bench_work_units_total", "total work units by mode"
        ).inc(m.mode, m.work)
        metrics.counter(
            "bench_adaptation_work_units_total", "adaptation work units by mode"
        ).inc(m.mode, m.adaptation_work)
        metrics.counter(
            "bench_switches_total", "applied reorders/switches by mode"
        ).inc(m.mode, m.total_switches)
        if m.order_changed:
            metrics.counter(
                "bench_order_changed_total",
                "queries finishing on a different order, by mode",
            ).inc(m.mode)
        metrics.histogram(
            "bench_query_work_units",
            WORK_BUCKETS,
            "per-query work-unit distribution by mode",
        ).observe(m.work, label=m.mode)

    def by_mode(self, mode: str) -> dict[str, QueryMeasurement]:
        return {m.qid: m for m in self.measurements if m.mode == mode}

    def modes(self) -> list[str]:
        seen: list[str] = []
        for measurement in self.measurements:
            if measurement.mode not in seen:
                seen.append(measurement.mode)
        return seen

    def templates(self) -> list[int]:
        return sorted({m.template for m in self.measurements})

    def to_payload(self) -> dict[str, Any]:
        """JSON-ready snapshot: every measurement plus the rolled-up registry."""
        return {
            "measurements": [m.as_dict() for m in self.measurements],
            "metrics": self.metrics.as_dict(),
        }

    def save_json(self, path: str) -> None:
        write_json_atomic(path, self.to_payload())


def standard_configs(
    history_window: int = 1000, check_frequency: int = 10
) -> dict[str, AdaptiveConfig]:
    """The four Sec 5 measurement modes."""
    return {
        "static": AdaptiveConfig(mode=ReorderMode.NONE),
        "inner-only": AdaptiveConfig(
            mode=ReorderMode.INNER_ONLY,
            history_window=history_window,
            check_frequency=check_frequency,
        ),
        "driving-only": AdaptiveConfig(
            mode=ReorderMode.DRIVING_ONLY,
            history_window=history_window,
            check_frequency=check_frequency,
        ),
        "both": AdaptiveConfig(
            mode=ReorderMode.BOTH,
            history_window=history_window,
            check_frequency=check_frequency,
        ),
    }


def run_workload(
    db: Database,
    workload: Iterable[WorkloadQuery],
    configs: Mapping[str, AdaptiveConfig],
    verify_against: str | None = "static",
) -> WorkloadResult:
    """Run every query under every mode.

    When *verify_against* names one of the modes, every other mode's result
    rows are checked against it (adaptation must never change the answer);
    a mismatch raises ``AssertionError`` — a benchmark that produces wrong
    answers must fail loudly, not report numbers.
    """
    result = WorkloadResult()
    ordered_configs = dict(configs)
    if verify_against is not None and verify_against in ordered_configs:
        # The reference mode must run first so every other mode is checked.
        reference_config = ordered_configs.pop(verify_against)
        ordered_configs = {verify_against: reference_config, **ordered_configs}
    for query in workload:
        reference: list | None = None
        for mode, config in ordered_configs.items():
            outcome = db.execute(query.sql, config)
            if verify_against is not None:
                if mode == verify_against:
                    reference = sorted(outcome.rows)
                elif reference is not None:
                    assert sorted(outcome.rows) == reference, (
                        f"{query.qid}: mode {mode!r} changed the result set"
                    )
            result.add(
                QueryMeasurement(
                    qid=query.qid,
                    template=query.template,
                    mode=mode,
                    work=outcome.stats.total_work,
                    execution_work=outcome.stats.execution_work,
                    adaptation_work=outcome.stats.adaptation_work,
                    wall_seconds=outcome.stats.wall_seconds,
                    rows=len(outcome.rows),
                    inner_reorders=outcome.stats.inner_reorders,
                    driving_switches=outcome.stats.driving_switches,
                    order_changed=outcome.stats.order_changed,
                )
            )
    return result
