"""Property test: kernel chunk folds == scalar ProbeSample chunk folds.

The chunked vectorized adaptive engine never runs a scalar probe: each
leg's per-chunk :class:`~repro.core.monitor.AggregatedWindow` fold —
``(n, index matches, output rows, work units)`` — is derived from the
columnar index's group-kernel aggregates (``totals`` / ``evals`` /
``pass_offsets`` / ``ev`` / ``pa`` summed over the chunk's key ranks).
The engine's correctness contract is that those folds are *numerically
identical* to what ``AggregatedWindow.observe_chunk`` would receive from
summing scalar per-probe samples: every cost constant is an exact binary
fraction, so the quarter-integer float work sums are equal bit for bit
under any regrouping.

This test checks that equivalence directly against an independent scalar
reimplementation of the probe (entry walk + short-circuit local evals),
over randomized leg shapes: random table sizes, NULL keys in the indexed
column, NULL cells under the local predicates, probe sequences mixing
present keys, missing keys, and NULL keys, and random chunk boundaries
(so window eviction folds whole aggregates on both sides).
"""

from __future__ import annotations

import random

import pytest

from repro.core.monitor import AggregatedWindow
from repro.db import Database
from repro.query.predicates import Between, Comparison, IsNull, Op
from repro.storage.columnar import _np
from repro.storage.compiled import compile_row_test
from repro.storage.counters import (
    INDEX_DESCEND_COST,
    INDEX_ENTRY_COST,
    PREDICATE_EVAL_COST,
    ROW_FETCH_COST,
)

pytestmark = pytest.mark.skipif(
    _np is None, reason="group kernels require numpy"
)

COMPARE_OPS = (Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE)
STRINGS = ("alpha", "beta", "gamma", "")
KEY_SPACE = 15


def random_rows(rng: random.Random, nrows: int) -> list[tuple]:
    rows = []
    for _ in range(nrows):
        k = None if rng.random() < 0.10 else rng.randint(0, KEY_SPACE)
        a = None if rng.random() < 0.15 else rng.randint(-20, 20)
        b = None if rng.random() < 0.15 else round(rng.uniform(-50.0, 50.0), 3)
        s = None if rng.random() < 0.15 else rng.choice(STRINGS)
        rows.append((k, a, b, s))
    return rows


def random_predicate(rng: random.Random):
    column = rng.choice(("a", "b", "s"))
    if column == "s":
        value = rng.choice(STRINGS)
    elif column == "b":
        value = round(rng.uniform(-50.0, 50.0), 3)
    else:
        value = rng.randint(-20, 20)
    shape = rng.randrange(3)
    if shape == 0:
        return Comparison(column, rng.choice(COMPARE_OPS), value)
    if shape == 1 and column != "s":
        low, high = sorted((value, -value if column == "a" else 0.0))
        return Between(column, low, high)
    return IsNull(column, negated=rng.random() < 0.5)


def random_probe_keys(rng: random.Random, n: int) -> list:
    keys = []
    for _ in range(n):
        roll = rng.random()
        if roll < 0.10:
            keys.append(None)  # NULL key: descend only, no entries
        elif roll < 0.30:
            keys.append(rng.randint(KEY_SPACE + 10, KEY_SPACE + 20))  # miss
        else:
            keys.append(rng.randint(0, KEY_SPACE))
    return keys


def scalar_sample(key, lookup, raw, tests):
    """One scalar probe's (index matches, output rows, work units).

    Independent reimplementation of the scalar indexed probe: descend,
    walk the key's entries in entry order, fetch each candidate row, run
    the local tests with short-circuit eval counting.
    """
    if key is None:
        return 0, 0, INDEX_DESCEND_COST
    rids = lookup.get(key, ())
    count = len(rids)
    entries = count if count else 1
    evals = 0
    output = 0
    for rid in rids:
        row = raw[rid]
        for test in tests:
            evals += 1
            if not test(row):
                break
        else:
            output += 1
    work = (
        INDEX_DESCEND_COST
        + entries * INDEX_ENTRY_COST
        + count * ROW_FETCH_COST
        + evals * PREDICATE_EVAL_COST
    )
    return count, output, work


@pytest.mark.parametrize("seed", range(25))
def test_kernel_chunk_folds_match_scalar_probe_folds(seed):
    rng = random.Random(5_151_000 + seed)
    db = Database(backend="columnar")
    db.create_table(
        "t", [("k", "int"), ("a", "int"), ("b", "float"), ("s", "string")]
    )
    db.insert("t", random_rows(rng, rng.randint(1, 150)))
    db.create_index("t", "k")
    table = db.catalog.table("t")
    index = db.catalog.index_on("t", "k")
    schema = table.schema
    raw = table.raw_rows()

    predicates = [random_predicate(rng) for _ in range(rng.randrange(3))]
    local_tests = []
    for predicate in predicates:
        test = compile_row_test(predicate, schema)
        assert test is not None
        test.predicate = predicate  # as RuntimeLeg attaches it
        local_tests.append((predicate, test))
    built = index.cascade_groups(local_tests)
    assert built is not None, "vectorizable leg refused a kernel"
    kernel, _keys_np, rank = built
    tests = [test for _, test in local_tests]
    present_keys = list(rank)
    lookup = index.lookup_rids_batch(present_keys) if present_keys else {}

    window_kernel = AggregatedWindow(size=37)
    window_scalar = AggregatedWindow(size=37)
    kernel_counts = [[0, 0] for _ in tests]
    scalar_counts = [[0, 0] for _ in tests]

    for _ in range(rng.randint(1, 6)):  # several chunks: exercise eviction
        chunk = random_probe_keys(rng, rng.randint(1, 60))
        flow = len(chunk)

        # -- kernel side: the engine's per-chunk aggregate ---------------
        ranks = _np.asarray(
            [-1 if key is None else rank.get(key, -2) for key in chunk],
            dtype=_np.int64,
        )
        present_ranks = ranks[ranks >= 0]
        missing = int(_np.count_nonzero(ranks == -2))
        if len(present_ranks):
            touched = int(kernel.totals[present_ranks].sum())
            evals = int(kernel.evals[present_ranks].sum())
            offsets = kernel.pass_offsets
            output = int(
                (offsets[present_ranks + 1] - offsets[present_ranks]).sum()
            )
            for slot in range(len(tests)):
                kernel_counts[slot][0] += int(
                    kernel.ev[slot][present_ranks].sum()
                )
                kernel_counts[slot][1] += int(
                    kernel.pa[slot][present_ranks].sum()
                )
        else:
            touched = evals = output = 0
        entries = touched + missing
        window_kernel.observe_chunk(
            flow,
            touched,
            output,
            flow * INDEX_DESCEND_COST
            + entries * INDEX_ENTRY_COST
            + touched * ROW_FETCH_COST
            + evals * PREDICATE_EVAL_COST,
        )

        # -- scalar side: sum per-probe samples, fold once ---------------
        sum_matches = 0
        sum_output = 0
        sum_work = 0.0
        for key in chunk:
            matches, out_rows, work = scalar_sample(key, lookup, raw, tests)
            sum_matches += matches
            sum_output += out_rows
            sum_work += work
            if key is not None:
                for slot, test in enumerate(tests):
                    for rid in lookup.get(key, ()):
                        row = raw[rid]
                        ok = True
                        for prior in tests[:slot]:
                            if not prior(row):
                                ok = False
                                break
                        if not ok:
                            continue  # short-circuited before this test
                        scalar_counts[slot][0] += 1
                        if test(row):
                            scalar_counts[slot][1] += 1
        window_scalar.observe_chunk(flow, sum_matches, sum_output, sum_work)

        # Bit-identical at every chunk boundary, not just at the end.
        assert len(window_kernel) == len(window_scalar)
        assert window_kernel.sum_matches == window_scalar.sum_matches
        assert window_kernel.sum_output == window_scalar.sum_output
        assert window_kernel.sum_work == window_scalar.sum_work

    # Per-test (evaluated, passed) local-predicate counters agree too —
    # these feed the controller's rank-rule selectivity estimates.
    assert kernel_counts == scalar_counts
    db.close()
