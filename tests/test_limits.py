"""Execution budgets: row caps, work caps, deadlines, cancellation."""

import pytest

from repro import (
    AdaptiveConfig,
    BudgetExceeded,
    CancellationToken,
    ExecutionError,
    ExecutionLimits,
    ReorderMode,
)

from tests.conftest import build_three_table_db

SQL = (
    "SELECT o.name, c.make, d.salary FROM Owner o, Car c, Demo d "
    "WHERE c.ownerid = o.id AND d.ownerid = o.id AND o.country = 'DE'"
)


def _db():
    return build_three_table_db()


class TestExecutionLimits:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_rows"):
            ExecutionLimits(max_rows=0)
        with pytest.raises(ValueError, match="max_work_units"):
            ExecutionLimits(max_work_units=0)
        with pytest.raises(ValueError, match="timeout_seconds"):
            ExecutionLimits(timeout_seconds=-1)

    def test_unlimited(self):
        assert ExecutionLimits().unlimited
        assert not ExecutionLimits(max_rows=5).unlimited
        assert not ExecutionLimits(cancellation=CancellationToken()).unlimited


class TestCancellationToken:
    def test_starts_clear_and_latches(self):
        token = CancellationToken()
        assert not token.cancelled
        token.cancel("admission control")
        assert token.cancelled
        assert token.reason == "admission control"

    def test_default_reason(self):
        token = CancellationToken()
        token.cancel()
        assert token.reason == "cancelled"


class TestRowBudget:
    def test_delivers_exactly_max_rows_then_raises(self):
        db = _db()
        full = db.execute(SQL, AdaptiveConfig(mode=ReorderMode.NONE))
        assert len(full.rows) > 3
        with pytest.raises(BudgetExceeded) as excinfo:
            db.execute(
                SQL,
                AdaptiveConfig(mode=ReorderMode.NONE),
                limits=ExecutionLimits(max_rows=3),
            )
        error = excinfo.value
        assert error.rows_emitted == 3
        assert error.driving_rows > 0
        assert error.work_units > 0
        assert "row budget" in error.reason
        assert "3 row(s)" in error.progress_summary()

    def test_budget_matching_result_size_does_not_trip(self):
        db = _db()
        full = db.execute(SQL, AdaptiveConfig(mode=ReorderMode.NONE))
        capped = db.execute(
            SQL,
            AdaptiveConfig(mode=ReorderMode.NONE),
            limits=ExecutionLimits(max_rows=len(full.rows)),
        )
        assert sorted(capped.rows) == sorted(full.rows)

    def test_row_budget_applies_to_adaptive_modes(self):
        db = _db()
        with pytest.raises(BudgetExceeded):
            db.execute(
                SQL,
                AdaptiveConfig(mode=ReorderMode.BOTH),
                limits=ExecutionLimits(max_rows=1),
            )


class TestWorkAndTimeBudgets:
    def test_work_budget(self):
        db = _db()
        with pytest.raises(BudgetExceeded, match="work budget"):
            db.execute(
                SQL,
                AdaptiveConfig(mode=ReorderMode.NONE),
                limits=ExecutionLimits(max_work_units=1.0),
            )

    def test_deadline(self):
        db = _db()
        with pytest.raises(BudgetExceeded, match="deadline"):
            db.execute(
                SQL,
                AdaptiveConfig(mode=ReorderMode.NONE),
                limits=ExecutionLimits(timeout_seconds=1e-9),
            )

    def test_pre_cancelled_token_stops_immediately(self):
        db = _db()
        token = CancellationToken()
        token.cancel("shed load")
        with pytest.raises(BudgetExceeded, match="shed load") as excinfo:
            db.execute(
                SQL,
                AdaptiveConfig(mode=ReorderMode.NONE),
                limits=ExecutionLimits(cancellation=token),
            )
        assert excinfo.value.rows_emitted == 0


class TestBudgetExceededType:
    def test_is_an_execution_error(self):
        assert issubclass(BudgetExceeded, ExecutionError)

    def test_progress_summary_formats_all_fields(self):
        error = BudgetExceeded(
            "row budget exceeded (10 rows)",
            rows_emitted=10,
            work_units=1234.5,
            elapsed_seconds=0.25,
            driving_rows=40,
        )
        text = error.progress_summary()
        assert "10 row(s)" in text
        assert "1,234 work units" in text or "1,235 work units" in text
        assert "250.0 ms" in text
        assert "40 driving row(s)" in text
