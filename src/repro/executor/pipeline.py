"""The pipelined indexed nested-loop join executor.

Execution is an explicit state machine over leg positions rather than nested
generators, because the adaptive layer must be able to permute the pipeline
*between* rows:

* position 0 holds the driving cursor; position ``i`` holds the iterator of
  the inner leg's matches for the current outer row;
* when the iterator at position ``i`` is exhausted, control moves back to
  ``i - 1`` — at that exact moment every leg at position >= ``i`` is in the
  paper's *depleted state* (Sec 4.1), and the executor offers the suffix to
  the adaptation controller for reordering;
* when control returns to position 0, the whole pipeline is depleted and the
  controller may switch the driving leg (Sec 4.2).

The executor owns the mutation primitives (:meth:`apply_inner_order`,
:meth:`apply_driving_switch`); *deciding* when and how to use them is the
controller's job, so a ``NONE``-mode run simply never mutates anything.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterator, Protocol

from repro.catalog.catalog import Catalog
from repro.core.config import AdaptiveConfig, ReorderMode
from repro.core.events import AdaptationEvent, EventKind
from repro.core.positions import PositionRegistry
from repro.errors import ExecutionError
from repro.executor.access import Binding, Cursor, RuntimeLeg
from repro.obs.observer import QueryObservability
from repro.optimizer.plans import PipelinePlan
from repro.robustness.guard import describe_failure
from repro.robustness.limits import ExecutionLimits, LimitEnforcer
from repro.robustness.oracle import InvariantOracle
from repro.storage.counters import WorkMeter
from repro.storage.cursor import ScanPartition
from repro.storage.table import Row


class AdaptationHooks(Protocol):
    """What the executor expects from an adaptation controller."""

    def on_suffix_depleted(self, position: int) -> None:
        """Legs at positions >= *position* are depleted; may reorder them."""
        ...

    def on_pipeline_depleted(self) -> bool:
        """Whole pipeline depleted (before the next driving row).

        Returns True when the driving leg was switched (the executor then
        restarts its iterator stack from the new driving cursor).
        """
        ...


class _NoAdaptation:
    """Inert controller used for ReorderMode.NONE."""

    def on_suffix_depleted(self, position: int) -> None:
        return None

    def on_pipeline_depleted(self) -> bool:
        return False


class PipelineExecutor:
    """Runs one pipelined plan, optionally under adaptive reordering."""

    def __init__(
        self,
        plan: PipelinePlan,
        catalog: Catalog,
        config: AdaptiveConfig | None = None,
        controller: AdaptationHooks | None = None,
        limits: ExecutionLimits | None = None,
        oracle: InvariantOracle | None = None,
        obs: QueryObservability | None = None,
    ) -> None:
        self.plan = plan
        self.catalog = catalog
        self.config = config if config is not None else AdaptiveConfig(mode=ReorderMode.NONE)
        self.controller: AdaptationHooks = (
            controller if controller is not None else _NoAdaptation()
        )
        self.limits = limits
        self.oracle = oracle
        self.obs = obs
        monitoring = self.config.mode.monitors
        # Fast adaptive mode: batched execution with chunk granularity
        # carries aggregated monitor windows (one weighted ring entry per
        # chunk). Scalar fallbacks still work against them — a per-row
        # observation is an n=1 aggregate with exact eviction.
        aggregated = (
            monitoring
            and self.config.batched
            and self.config.monitor_granularity == "chunk"
        )
        self.legs = {
            alias: RuntimeLeg(
                plan.leg(alias),
                catalog,
                self.config.history_window,
                monitoring,
                hash_policy=self.config.hash_probe_policy,
                aggregated_monitor=aggregated,
            )
            for alias in plan.order
        }
        for leg in self.legs.values():
            leg.degrade_hook = self._record_monitor_degraded
            # Access-layer hooks are all per-probe/per-row ("hot"); a
            # recorder-only bundle (obs.hot False) must keep the access
            # layer on the exact observability-off code path.
            leg.obs = obs if (obs is not None and obs.hot) else None
            if oracle is not None:
                leg.collect_rids = True
        self.order: list[str] = list(plan.order)
        self.schemas = {alias: leg.schema for alias, leg in self.legs.items()}
        # (alias, column) -> row slot, shared across every leg's probe
        # compilation and the projection, so repeated recompiles after
        # reorders never re-resolve schema positions.
        self._slot_cache: dict[tuple[str, str], int] = {}
        self.join_graph = plan.query.join_graph()
        # Live join selectivities, keyed by column equivalence class: start
        # from optimizer estimates, refined from monitored values (Eq 7).
        self.class_selectivities: dict[int, float] = dict(
            plan.class_selectivities
        )
        self.registry = PositionRegistry()
        self.last_abandoned_driving: str | None = None
        # How many times each leg has been switched *away from* while
        # driving; feeds the escalating anti-thrash penalty.
        self.abandon_counts: dict[str, int] = {}
        self.driving_cursor: Cursor | None = None
        self._driving_iter: Iterator[Row] | None = None
        # Parallel partitioned execution: when set, the *initial* driving
        # cursor is bounded to this slice of the scan order. Resumed and
        # post-switch cursors are never bounded (a new driving leg means a
        # new scan, not a slice of the old one).
        self.driving_partition: "ScanPartition | None" = None
        self._projector = self._compile_projection()
        # Statistics for the experiments.
        self.inner_reorders = 0
        self.driving_switches = 0
        self.driving_rows_since_check = 0
        self.driving_rows_total = 0
        # Applied adaptation decisions, in order (core.events).
        self.events: list = []
        self.rows_emitted = 0
        self.order_history: list[tuple[str, ...]] = [tuple(self.order)]
        self.wall_seconds = 0.0
        self.work: WorkMeter | None = None  # this run's work delta
        # Meter snapshot at execution start (set by rows()); lets the
        # observability sampler attribute work units to points in time.
        self.meter_before: WorkMeter | None = None
        self._started = False
        # Smallest pipeline position whose suffix is currently depleted
        # (0 = whole pipeline); None while a row is bound below the suffix.
        # This is the machine-checkable form of the paper's depleted-state
        # precondition — the invariant oracle reads it before permutations.
        self.depleted_from: int | None = None
        self._enforcer: LimitEnforcer | None = None
        # Which execution engine actually ran this query: "scalar" (this
        # class / the batched executor's scalar fallback), "batched"
        # (generic batched loop), "turbo" / "fast" (unobserved batched
        # loops), "vector" (static columnar cascade), "vector-adaptive"
        # (chunked adaptive cascade; "+fast" suffix when it handed the
        # cursors back to the generic loop mid-query). Surfaced on
        # ExecutionStats.engine and the flight record.
        self.engine_used = "scalar"
        # Why the vectorized cascade did NOT run (first failed gate), for
        # the CLI's one-time warning; None when it ran or wasn't eligible.
        self.vector_gate_reason: str | None = None

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _slot_of(self, alias: str, column: str) -> int:
        key = (alias, column)
        slot = self._slot_cache.get(key)
        if slot is None:
            slot = self.schemas[alias].position_of(column)
            self._slot_cache[key] = slot
        return slot

    def _compile_projection(self) -> Callable[[Binding], tuple[Any, ...]]:
        slots = [
            (output.alias, self._slot_of(output.alias, output.column))
            for output in self.plan.projection
        ]

        def project(binding: Binding) -> tuple[Any, ...]:
            return tuple(binding[alias][slot] for alias, slot in slots)

        return project

    def _compile_all_probes(self, start_position: int = 1) -> None:
        for position in range(start_position, len(self.order)):
            alias = self.order[position]
            self._compile_probe_at(position, alias)

    def predicate_selectivity(self, predicate) -> float:
        """Live selectivity estimate of a (possibly derived) join predicate."""
        class_id = self.join_graph.class_id(predicate.left, predicate.left_column)
        if class_id is None:
            return 0.01
        return self.class_selectivities.get(class_id, 0.01)

    def _compile_probe_at(self, position: int, alias: str) -> None:
        leg = self.legs[alias]
        previous_access = (
            leg.probe_config.access_predicate if leg.probe_config else None
        )
        try:
            leg.compile_probe(
                preceding=self.order[:position],
                graph=self.join_graph,
                schemas=self.schemas,
                sel_of=self.predicate_selectivity,
                slot_of=self._slot_of,
            )
        except ExecutionError as exc:
            raise ExecutionError(
                f"probe compilation failed for leg {alias!r} at position "
                f"{position} of order {tuple(self.order)}"
            ) from exc
        new_access = leg.probe_config.access_predicate if leg.probe_config else None
        if previous_access is not None and new_access != previous_access:
            # The probe semantics changed; old windowed counters no longer
            # describe the new access pattern.
            leg.monitor.reset()
        leg.positional = self.registry.predicate_for(alias)

    def _open_driving(self, alias: str) -> None:
        leg = self.legs[alias]
        resume = self.registry.resume_cursor(alias)
        partition = (
            self.driving_partition
            if resume is None and alias == self.plan.order[0]
            else None
        )
        self.driving_cursor = leg.open_driving_cursor(
            resume=resume, partition=partition
        )
        self._driving_iter = leg.driving_rows(self.driving_cursor)
        leg.positional = None  # the cursor position already excludes the past
        if self.obs is not None:
            self.obs.on_leg_open(alias, resume is not None)

    # ------------------------------------------------------------------
    # Mutation primitives used by the adaptation controller
    # ------------------------------------------------------------------
    def apply_inner_order(self, position: int, new_suffix: list[str]) -> None:
        """Reorder the depleted suffix starting at *position* (>= 1)."""
        if self.oracle is not None:
            self.oracle.check_inner_reorder(self, position, new_suffix)
        if position < 1:
            raise ExecutionError("inner reordering cannot move the driving leg")
        current_suffix = self.order[position:]
        if sorted(current_suffix) != sorted(new_suffix):
            raise ExecutionError(
                f"new suffix {new_suffix} is not a permutation of "
                f"{current_suffix}"
            )
        if new_suffix == current_suffix:
            return
        self.order[position:] = new_suffix
        self._compile_all_probes(start_position=position)
        self.inner_reorders += 1
        self.order_history.append(tuple(self.order))

    def apply_driving_switch(self, new_order: list[str]) -> None:
        """Switch the driving leg; only legal when the pipeline is depleted."""
        if self.oracle is not None:
            self.oracle.check_driving_switch(self)
        if sorted(new_order) != sorted(self.order):
            raise ExecutionError(
                f"new order {new_order} is not a permutation of {self.order}"
            )
        old_driving = self.order[0]
        new_driving = new_order[0]
        if new_driving == old_driving:
            raise ExecutionError(
                "apply_driving_switch called without a driving change; use "
                "apply_inner_order for inner-leg moves"
            )
        if self.driving_cursor is None:
            raise ExecutionError("pipeline has not started")
        # Freeze the outgoing driving scan; from now on the old driving leg
        # carries a positional predicate whenever it serves as an inner leg.
        self.registry.freeze(old_driving, self.driving_cursor)
        self.last_abandoned_driving = old_driving
        self.abandon_counts[old_driving] = (
            self.abandon_counts.get(old_driving, 0) + 1
        )
        self.order = list(new_order)
        self._open_driving(new_driving)
        self._compile_all_probes(start_position=1)
        # The new driving leg's inner-probe history is stale with respect to
        # its new role; its scan monitor restarts inside open_driving_cursor.
        self.legs[new_driving].monitor.reset()
        self.driving_switches += 1
        self.driving_rows_since_check = 0
        self.order_history.append(tuple(self.order))

    def record_event(self, event: AdaptationEvent) -> None:
        """Append *event* to the log, notifying observability if armed."""
        self.events.append(event)
        if self.obs is not None:
            self.obs.on_event(event)
            if event.new_order != event.old_order:
                self.obs.on_order_change(event.new_order)

    def _record_monitor_degraded(self, alias: str, exc: BaseException) -> None:
        """A leg's monitor failed; note it and keep executing (Sec 4.3 is
        advice, not execution — losing a monitor never loses rows)."""
        order = tuple(self.order)
        self.record_event(
            AdaptationEvent(
                kind=EventKind.DEGRADED,
                driving_rows_produced=self.driving_rows_total,
                old_order=order,
                new_order=order,
                estimated_current_cost=0.0,
                estimated_new_cost=0.0,
                reason=(
                    f"monitor failure on leg {alias!r}: {describe_failure(exc)}"
                ),
            )
        )

    @property
    def total_switches(self) -> int:
        return self.inner_reorders + self.driving_switches

    @property
    def work_units(self) -> float:
        """Total work units this execution charged (0.0 before completion)."""
        return self.work.total_units if self.work is not None else 0.0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def rows(self) -> Iterator[tuple[Any, ...]]:
        """Execute the pipeline, yielding projected result rows."""
        if self._started:
            raise ExecutionError("a PipelineExecutor instance runs only once")
        self._started = True
        if self.limits is not None and not self.limits.unlimited:
            self._enforcer = LimitEnforcer(self.limits, self)
        started_at = time.perf_counter()
        before = self.catalog.meter.snapshot()
        self.meter_before = before
        try:
            yield from self._run()
        finally:
            self.wall_seconds = time.perf_counter() - started_at
            self.work = self.catalog.meter - before

    def _driving_rid(self) -> int:
        """RID of the driving row just produced (oracle mode).

        Valid immediately after the driving iterator yields: the cursor's
        last position — ``(rid,)`` for table scans, ``(key, rid)`` for
        index scans — is exactly the yielded row's.
        """
        assert self.driving_cursor is not None
        position = self.driving_cursor.last_position
        assert position is not None
        return position[-1]

    def _run(self) -> Iterator[tuple[Any, ...]]:
        self._open_driving(self.order[0])
        self._compile_all_probes()
        leg_count = len(self.order)
        meter = self.catalog.meter
        limits = self._enforcer
        oracle = self.oracle
        # Per-row hook sites below fire only for hot bundles; cold
        # consumers (the flight recorder's decision audit) are fed at the
        # controller's check points instead.
        obs = self.obs if (self.obs is not None and self.obs.hot) else None
        if leg_count == 1:
            only = self.order[0]
            assert self._driving_iter is not None
            for row in self._driving_iter:
                if limits is not None:
                    limits.check_emit()
                self.driving_rows_total += 1
                self.rows_emitted += 1
                meter.charge_row_emitted()
                if oracle is not None:
                    oracle.record_emit({only: self._driving_rid()})
                if obs is not None:
                    obs.on_driving_row(self)
                    obs.on_rows_emitted()
                yield self._projector({only: row})
            return

        binding: Binding = {}
        # RIDs of the currently bound rows, keyed like binding (oracle mode).
        rid_binding: dict[str, int] = {}
        # iterators[i] yields rows for the leg at position i; index 0 is the
        # driving iterator, others are per-outer-row match lists. In oracle
        # mode rid_iterators[i] yields the matching RIDs in lockstep.
        iterators: list[Iterator[Row] | None] = [None] * leg_count
        rid_iterators: list[Iterator[int] | None] = [None] * leg_count
        position = 0
        last = leg_count - 1
        while True:
            if position == 0:
                # Whole pipeline depleted: the controller may switch the
                # driving leg before the next outer row is fetched.
                self.depleted_from = 0
                if self.controller.on_pipeline_depleted():
                    leg_count = len(self.order)
                    last = leg_count - 1
                    binding.clear()
                    rid_binding.clear()
                if limits is not None:
                    limits.check()
                assert self._driving_iter is not None
                row = next(self._driving_iter, None)
                if row is None:
                    return
                self.depleted_from = None
                self.driving_rows_since_check += 1
                self.driving_rows_total += 1
                if obs is not None:
                    obs.on_driving_row(self)
                binding[self.order[0]] = row
                if oracle is not None:
                    rid_binding[self.order[0]] = self._driving_rid()
                position = 1
                leg = self.legs[self.order[1]]
                iterators[1] = iter(leg.probe(binding))
                if oracle is not None:
                    rid_iterators[1] = iter(leg.match_rids)
                continue
            iterator = iterators[position]
            assert iterator is not None
            row = next(iterator, None)
            if row is None:
                # Legs at positions >= position are depleted (Sec 4.1).
                self.depleted_from = position
                if obs is not None:
                    obs.on_suffix_depleted(position)
                self.controller.on_suffix_depleted(position)
                position -= 1
                continue
            self.depleted_from = None
            binding[self.order[position]] = row
            if oracle is not None:
                rid_iterator = rid_iterators[position]
                assert rid_iterator is not None
                rid_binding[self.order[position]] = next(rid_iterator)
            if position == last:
                if limits is not None:
                    limits.check_emit()
                self.rows_emitted += 1
                meter.charge_row_emitted()
                if oracle is not None:
                    oracle.record_emit(rid_binding)
                if obs is not None:
                    obs.on_rows_emitted()
                yield self._projector(binding)
                continue
            position += 1
            leg = self.legs[self.order[position]]
            iterators[position] = iter(leg.probe(binding))
            if oracle is not None:
                rid_iterators[position] = iter(leg.match_rids)

    def run_to_completion(self) -> list[tuple[Any, ...]]:
        """Execute and collect every result row."""
        return list(self.rows())
