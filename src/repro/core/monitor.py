"""Run-time monitors (Sec 4.3).

Each leg carries a :class:`LegMonitor` that observes the row counts flowing
through it over a sliding **history window** of the last ``w`` incoming rows
(Sec 4.3.5). From those counters the controller derives:

* combined residual local/join selectivity ``S_LPR = O_n / I_2`` (Eq 6) —
  measured on the *conjunction*, so cross-column correlation is captured
  exactly (the Example 2 property);
* index join-predicate selectivity ``S_JP = O_1 / (I_1 * C(T))`` (Eq 7);
* join cardinality ``JC(T) = O(T) / I(T)`` (Eq 11);
* measured probe cost ``PC(T)`` = work units per incoming row.

The driving leg has no "incoming rows"; :class:`DrivingMonitor` instead
tracks scan progress (entries read, rows surviving locals) so the controller
can estimate the *remaining* work of the current plan (Fig 3 step 2) and the
residual local selectivity of the leg.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass
class ProbeSample:
    """Counters for one incoming outer row at an inner leg."""

    index_matches: int
    output_rows: int
    work_units: float


class SlidingWindow:
    """Aggregates :class:`ProbeSample` totals over the last ``w`` samples."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("window size must be >= 1")
        self.size = size
        self._samples: deque[ProbeSample] = deque()
        self._sum_matches = 0
        self._sum_output = 0
        self._sum_work = 0.0
        self.lifetime_samples = 0

    def add(self, sample: ProbeSample) -> None:
        self._samples.append(sample)
        self._sum_matches += sample.index_matches
        self._sum_output += sample.output_rows
        self._sum_work += sample.work_units
        self.lifetime_samples += 1
        if len(self._samples) > self.size:
            expired = self._samples.popleft()
            self._sum_matches -= expired.index_matches
            self._sum_output -= expired.output_rows
            self._sum_work -= expired.work_units

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def sum_matches(self) -> int:
        return self._sum_matches

    @property
    def sum_output(self) -> int:
        return self._sum_output

    @property
    def sum_work(self) -> float:
        return self._sum_work


class LegMonitor:
    """Windowed monitor for one leg acting as an inner leg."""

    def __init__(self, window: int) -> None:
        self.window = SlidingWindow(window)

    @property
    def incoming_rows(self) -> int:
        return len(self.window)

    @property
    def lifetime_incoming(self) -> int:
        return self.window.lifetime_samples

    def record_probe(
        self, index_matches: int, output_rows: int, work_units: float
    ) -> None:
        self.window.add(ProbeSample(index_matches, output_rows, work_units))

    def reset(self) -> None:
        """Drop history (used when the leg's probe configuration changes)."""
        self.window = SlidingWindow(self.window.size)

    # -- derived estimates (None when no data yet) -----------------------
    def join_cardinality(self) -> float | None:
        """Eq (11): JC = O / I over the window."""
        if len(self.window) == 0:
            return None
        return self.window.sum_output / len(self.window)

    def index_match_rate(self) -> float | None:
        """Average index matches per incoming row (O_1 / I_1)."""
        if len(self.window) == 0:
            return None
        return self.window.sum_matches / len(self.window)

    def index_join_selectivity(self, base_cardinality: int) -> float | None:
        """Eq (7): S_JP of the index-access join predicate."""
        rate = self.index_match_rate()
        if rate is None or base_cardinality <= 0:
            return None
        return rate / base_cardinality

    def residual_selectivity(self) -> float | None:
        """Eq (6)/(8): combined selectivity of all residual predicates."""
        if self.window.sum_matches == 0:
            return None
        return self.window.sum_output / self.window.sum_matches

    def probe_cost(self) -> float | None:
        """Measured PC: work units per incoming row, over the window."""
        if len(self.window) == 0:
            return None
        return self.window.sum_work / len(self.window)


class DrivingMonitor:
    """Scan-progress monitor for the leg currently driving the pipeline."""

    def __init__(self, window: int) -> None:
        self.window = window
        self._recent: deque[tuple[int, int]] = deque()  # (scanned, survived)
        self.entries_scanned = 0       # rows out of the access method
        self.rows_survived = 0         # rows surviving residual locals
        self._recent_scanned = 0
        self._recent_survived = 0

    def record_scanned(self, survived: bool) -> None:
        self.entries_scanned += 1
        if survived:
            self.rows_survived += 1
        self._recent.append((1, 1 if survived else 0))
        self._recent_scanned += 1
        self._recent_survived += 1 if survived else 0
        if len(self._recent) > self.window:
            scanned, lived = self._recent.popleft()
            self._recent_scanned -= scanned
            self._recent_survived -= lived

    def residual_selectivity(self) -> float | None:
        """Windowed S_LPR of the driving leg's residual local predicates."""
        if self._recent_scanned == 0:
            return None
        return self._recent_survived / self._recent_scanned
