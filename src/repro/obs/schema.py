"""Declarative JSONL schemas shared by the validators and the tooling.

Two line-oriented formats exist in this repo:

* **span traces** (``obs/trace.py``): one span object per line with
  exactly ``JSONL_KEYS``;
* **telemetry segments** (``obs/recorder.py``): one typed record per
  line; every record carries a ``"type"`` tag (currently only
  ``"flight"``) and unknown types are a validation **error**, so schema
  drift fails loudly instead of being silently skipped.

``scripts/validate_trace.py`` is a thin CLI over the validators here —
the single source of truth for both schemas (no external jsonschema
dependency; the field specs below are plain data).

A field spec maps name -> (types, required, allow_none). Validators
return a list of human-readable problems (empty = valid); the stateful
:class:`TraceValidator` / :class:`TelemetryValidator` additionally check
cross-line invariants (unique span ids, parents-before-children, unique
query ids, at least one root).
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.trace import JSONL_KEYS, SPAN_KINDS

#: Record types a telemetry segment may carry.
TELEMETRY_RECORD_TYPES = ("flight",)

_NUMBER = (int, float)

# name -> (accepted types, required, allow None)
SPAN_FIELDS: dict[str, tuple[tuple, bool, bool]] = {
    "span_id": ((int,), True, False),
    "parent_id": ((int,), True, True),
    "name": ((str,), True, False),
    "kind": ((str,), True, False),
    "start_ms": (_NUMBER, True, False),
    "end_ms": (_NUMBER, True, True),
    "attrs": ((dict,), True, False),
}

FLIGHT_FIELDS: dict[str, tuple[tuple, bool, bool]] = {
    "type": ((str,), True, False),
    "query_id": ((str,), True, False),
    "ts": (_NUMBER, True, False),
    "sql": ((str,), True, False),
    "template": ((str,), True, False),
    "mode": ((str,), True, False),
    "outcome": ((str,), True, False),
    "wall_ms": (_NUMBER, True, True),
    "work_units": (_NUMBER, True, True),
    "rows": ((int,), True, False),
    "plan_order": ((list,), True, False),
    "plan_cost": (_NUMBER, False, True),
    "final_order": ((list,), True, False),
    "monitor_granularity": ((str,), False, False),
    "batched": ((bool,), False, False),
    "workers": ((int,), False, False),
    "engine": ((str,), False, False),
    "worker_engines": ((list,), False, False),
    "vector_gate": ((str,), False, True),
    "legs": ((dict,), True, False),
    "events": ((list,), True, False),
    "decisions": ((list,), True, False),
    "error": ((str,), False, True),
    "slow": ((bool,), False, False),
    "session": ((str,), False, True),
    "shed": ((str,), False, True),
    "queued_ms": (_NUMBER, False, True),
}

DECISION_FIELDS: dict[str, tuple[tuple, bool, bool]] = {
    "check": ((str,), True, False),
    "applied": ((bool,), True, False),
    "driving_rows": ((int,), True, False),
    "position": ((int,), True, False),
    "order_before": ((list,), True, False),
    "order_after": ((list,), True, True),
    "rank_terms": ((list,), True, False),
    "candidate_costs": ((dict,), False, False),
    "estimated_current_cost": (_NUMBER, False, True),
    "estimated_new_cost": (_NUMBER, False, True),
    "estimated_benefit": (_NUMBER, False, True),
    "window": ((dict,), False, False),
    "monitor_granularity": ((str,), False, False),
    "worker": ((int,), False, False),
}

EVENT_FIELDS: dict[str, tuple[tuple, bool, bool]] = {
    "kind": ((str,), True, False),
    "driving_rows": ((int,), True, False),
    "old_order": ((list,), True, False),
    "new_order": ((list,), True, False),
    "estimated_current_cost": (_NUMBER, False, True),
    "estimated_new_cost": (_NUMBER, False, True),
    "estimated_benefit": (_NUMBER, False, True),
    "position": ((int,), False, False),
    "reason": ((str,), False, False),
    "worker": ((int,), False, False),
}


def check_fields(
    obj: dict[str, Any],
    fields: dict[str, tuple[tuple, bool, bool]],
    *,
    context: str = "record",
    allow_extra: bool = False,
) -> list[str]:
    """Validate *obj* against a field spec; returns problems (empty = OK)."""
    problems: list[str] = []
    if not isinstance(obj, dict):
        return [f"{context}: expected an object, got {type(obj).__name__}"]
    for name, (types, required, allow_none) in fields.items():
        if name not in obj:
            if required:
                problems.append(f"{context}: missing required field {name!r}")
            continue
        value = obj[name]
        if value is None:
            if not allow_none:
                problems.append(f"{context}: field {name!r} must not be null")
            continue
        # bool is an int subclass; only accept it where bool is the spec.
        if isinstance(value, bool) and bool not in types:
            problems.append(
                f"{context}: field {name!r} must be "
                f"{'/'.join(t.__name__ for t in types)}, got bool"
            )
            continue
        if not isinstance(value, types):
            problems.append(
                f"{context}: field {name!r} must be "
                f"{'/'.join(t.__name__ for t in types)}, "
                f"got {type(value).__name__}"
            )
    if not allow_extra:
        extras = set(obj) - set(fields)
        if extras:
            problems.append(
                f"{context}: unexpected field(s) {sorted(extras)!r}"
            )
    return problems


# ---------------------------------------------------------------------------
# Span traces
# ---------------------------------------------------------------------------
def validate_span(obj: Any, *, context: str = "span") -> list[str]:
    problems = check_fields(obj, SPAN_FIELDS, context=context)
    if problems:
        return problems
    if tuple(obj) != JSONL_KEYS:
        problems.append(
            f"{context}: keys {tuple(obj)!r} != expected order {JSONL_KEYS!r}"
        )
    if obj["span_id"] < 1:
        problems.append(f"{context}: span_id must be >= 1, got {obj['span_id']}")
    if not obj["name"]:
        problems.append(f"{context}: name must be non-empty")
    if obj["kind"] not in SPAN_KINDS:
        problems.append(
            f"{context}: kind {obj['kind']!r} not in {SPAN_KINDS}"
        )
    end_ms = obj["end_ms"]
    if end_ms is not None and end_ms < obj["start_ms"]:
        problems.append(
            f"{context}: end_ms {end_ms} < start_ms {obj['start_ms']}"
        )
    return problems


class TraceValidator:
    """Cross-line invariants of one span-trace file."""

    def __init__(self) -> None:
        self.seen_ids: set[int] = set()
        self.roots = 0
        self.lines = 0

    def feed(self, obj: Any, *, context: str = "span") -> list[str]:
        self.lines += 1
        problems = validate_span(obj, context=context)
        if problems:
            return problems
        span_id = obj["span_id"]
        if span_id in self.seen_ids:
            problems.append(f"{context}: duplicate span_id {span_id}")
        parent_id = obj["parent_id"]
        if parent_id is None:
            self.roots += 1
        elif parent_id not in self.seen_ids:
            problems.append(
                f"{context}: parent_id {parent_id} does not reference an "
                f"earlier span"
            )
        self.seen_ids.add(span_id)
        return problems

    def finish(self) -> list[str]:
        if self.lines == 0:
            return ["trace file is empty"]
        if self.roots == 0:
            return ["no root span (parent_id null) in the trace"]
        return []


# ---------------------------------------------------------------------------
# Telemetry segments
# ---------------------------------------------------------------------------
def validate_flight_record(obj: Any, *, context: str = "record") -> list[str]:
    problems = check_fields(obj, FLIGHT_FIELDS, context=context)
    if problems:
        return problems
    for index, decision in enumerate(obj["decisions"]):
        ctx = f"{context}: decision[{index}]"
        sub = check_fields(decision, DECISION_FIELDS, context=ctx)
        problems.extend(sub)
        if not sub and decision["check"] not in ("inner", "driving"):
            problems.append(
                f"{ctx}: check {decision['check']!r} "
                f"not in ('inner', 'driving')"
            )
    for index, event in enumerate(obj["events"]):
        problems.extend(
            check_fields(
                event, EVENT_FIELDS, context=f"{context}: event[{index}]"
            )
        )
    return problems


def validate_telemetry_record(obj: Any, *, context: str = "record") -> list[str]:
    """Dispatch on the ``type`` tag; unknown types are an error."""
    if not isinstance(obj, dict):
        return [f"{context}: expected an object, got {type(obj).__name__}"]
    record_type = obj.get("type")
    if record_type == "flight":
        return validate_flight_record(obj, context=context)
    return [
        f"{context}: unknown record type {record_type!r} "
        f"(known: {TELEMETRY_RECORD_TYPES})"
    ]


class TelemetryValidator:
    """Cross-line invariants of one or more telemetry segments."""

    def __init__(self) -> None:
        self.seen_query_ids: set[str] = set()
        self.lines = 0

    def feed(self, obj: Any, *, context: str = "record") -> list[str]:
        self.lines += 1
        problems = validate_telemetry_record(obj, context=context)
        if problems:
            return problems
        query_id = obj["query_id"]
        if query_id in self.seen_query_ids:
            problems.append(f"{context}: duplicate query_id {query_id!r}")
        self.seen_query_ids.add(query_id)
        return problems

    def finish(self) -> list[str]:
        if self.lines == 0:
            return ["telemetry segment(s) contain no records"]
        return []


def sniff_kind(first_line: str) -> str:
    """Guess a JSONL file's format from its first line.

    Returns ``"trace"``, ``"telemetry"``, or ``"unknown"``.
    """
    try:
        obj = json.loads(first_line)
    except json.JSONDecodeError:
        return "unknown"
    if not isinstance(obj, dict):
        return "unknown"
    if "span_id" in obj:
        return "trace"
    if "type" in obj:
        return "telemetry"
    return "unknown"
