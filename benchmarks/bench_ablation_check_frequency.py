"""Ablation — the check frequency "c" (Fig 2/Fig 3 line 1).

"c" trades adaptation latency against checking overhead: checking every row
(c=1) reacts fastest but pays the most checking work; very large c may miss
the profitable switch window entirely on short queries. The paper uses
c=10. Shape: total work is flat-ish across small c and degrades for very
large c on this workload's short queries.
"""

from conftest import emit_report

from repro.bench import ablation_experiment
from repro.core.config import AdaptiveConfig, ReorderMode

FREQUENCIES = (1, 5, 10, 50, 200)


def test_check_frequency_ablation(benchmark, dmv_db, workload_small):
    variants = {"static": AdaptiveConfig(mode=ReorderMode.NONE)}
    for c in FREQUENCIES:
        variants[f"c={c}"] = AdaptiveConfig(
            mode=ReorderMode.BOTH,
            check_frequency=c,
            switch_benefit_threshold=0.2,
        )
    result = benchmark.pedantic(
        lambda: ablation_experiment(dmv_db, workload_small, variants, "static"),
        rounds=1,
        iterations=1,
    )
    emit_report(
        "ablation_check_frequency",
        result.report("Ablation — reorder check frequency c (total work)"),
    )
    static_work = result.series["static"][0]
    default_work = result.series["c=10"][0]
    assert default_work < static_work, "c=10 must beat the static baseline"
    # The paper's default c=10 should be within a few percent of the best c.
    best = min(work for label, (work, _) in result.series.items() if label != "static")
    assert default_work <= best * 1.10
