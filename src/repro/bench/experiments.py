"""Experiment drivers: one function per paper table/figure (DESIGN.md Sec 5).

Each driver returns a small result dataclass carrying the same series the
paper's artifact shows, plus a ``report()`` rendering. Benchmarks print the
report and assert the qualitative shape; tests reuse the drivers at small
scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.bench.reporting import format_scatter_summary, format_table
from repro.bench.runner import run_workload
from repro.core.config import AdaptiveConfig, ReorderMode
from repro.db import Database
from repro.dmv.generator import DmvSummary
from repro.dmv.templates import WorkloadQuery

# Table 1 of the paper (100K-owner DMV data set).
PAPER_TABLE1 = {
    "Owner": 100_000,
    "Car": 111_676,
    "Demographics": 100_000,
    "Accidents": 279_125,
}


# ---------------------------------------------------------------------------
# E1 — Table 1: data set cardinalities
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Table1Result:
    scale: float
    rows: list[tuple[str, int, int]]  # (table, ours, paper-scaled)

    def report(self) -> str:
        table_rows = [
            (name, ours, expected, f"{ours / max(expected, 1):.3f}")
            for name, ours, expected in self.rows
        ]
        return format_table(
            ["table", "generated", "paper (scaled)", "ratio"],
            table_rows,
            title=f"Table 1 — DMV cardinalities at scale {self.scale}",
        )


def table1_experiment(summary: DmvSummary, scale: float) -> Table1Result:
    rows = []
    for name, count in summary.as_rows():
        expected = int(PAPER_TABLE1.get(name, 0) * scale)
        rows.append((name, count, expected))
    return Table1Result(scale=scale, rows=rows)


# ---------------------------------------------------------------------------
# E3/E8 — Fig 7 and Fig 11: scatter of static vs adaptive elapsed work
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ScatterResult:
    pairs: list[tuple[str, float, float]]  # (qid, static, adaptive)
    changed: set[str]                      # qids whose order changed
    degraded: list[tuple[str, float]]      # speedup < 1 beyond tolerance

    @property
    def total_improvement(self) -> float:
        total_static = sum(x for _, x, _ in self.pairs)
        total_adaptive = sum(y for _, _, y in self.pairs)
        return 1.0 - total_adaptive / max(total_static, 1e-12)

    @property
    def changed_improvement(self) -> float:
        static = sum(x for qid, x, _ in self.pairs if qid in self.changed)
        adaptive = sum(y for qid, _, y in self.pairs if qid in self.changed)
        if static <= 0:
            return 0.0
        return 1.0 - adaptive / static

    @property
    def max_speedup(self) -> float:
        return max((x / max(y, 1e-12) for _, x, y in self.pairs), default=1.0)

    def report(self, title: str) -> str:
        lines = [
            title,
            format_scatter_summary(self.pairs, "no-switch", "switch"),
            f"  improvement on changed queries "
            f"({len(self.changed)}/{len(self.pairs)}): "
            f"{self.changed_improvement * 100:.1f}%",
            f"  degraded queries (>5% slower): {len(self.degraded)}",
        ]
        return "\n".join(lines)


def scatter_experiment(
    db: Database,
    workload: Sequence[WorkloadQuery],
    adaptive_config: AdaptiveConfig | None = None,
) -> ScatterResult:
    """Fig 7 (four-table) / Fig 11 (six-table): static vs both-reordering."""
    configs = {
        "static": AdaptiveConfig(mode=ReorderMode.NONE),
        "both": adaptive_config or AdaptiveConfig(mode=ReorderMode.BOTH),
    }
    result = run_workload(db, workload, configs)
    static = result.by_mode("static")
    both = result.by_mode("both")
    pairs = []
    changed = set()
    degraded = []
    for qid, measurement in static.items():
        adaptive = both[qid]
        pairs.append((qid, measurement.work, adaptive.work))
        if adaptive.order_changed:
            changed.add(qid)
        speedup = measurement.work / max(adaptive.work, 1e-12)
        if speedup < 0.95:
            degraded.append((qid, speedup))
    return ScatterResult(pairs=pairs, changed=changed, degraded=degraded)


# ---------------------------------------------------------------------------
# E4/E5 — Fig 8 and Fig 9: per-template normalized elapsed time
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TemplateRatioResult:
    mode: str
    # template -> (ratio over all queries, ratio over changed-only, changed count)
    ratios: dict[int, tuple[float, float, int]]

    def report(self, title: str) -> str:
        rows = [
            (
                f"Template {template}",
                f"{all_ratio * 100:.1f}%",
                f"{changed_ratio * 100:.1f}%" if changed else "-",
                changed,
            )
            for template, (all_ratio, changed_ratio, changed) in sorted(
                self.ratios.items()
            )
        ]
        return format_table(
            ["template", "ratio (all)", "ratio (changed)", "#changed"],
            rows,
            title=title,
        )


def template_ratio_experiment(
    db: Database,
    workload: Sequence[WorkloadQuery],
    mode: ReorderMode,
    adaptive_config: AdaptiveConfig | None = None,
) -> TemplateRatioResult:
    """Fig 8 (INNER_ONLY) / Fig 9 (DRIVING_ONLY): time as % of no-reorder."""
    config = adaptive_config or AdaptiveConfig(mode=mode)
    configs = {
        "static": AdaptiveConfig(mode=ReorderMode.NONE),
        "adaptive": config,
    }
    result = run_workload(db, workload, configs)
    static = result.by_mode("static")
    adaptive = result.by_mode("adaptive")
    ratios: dict[int, tuple[float, float, int]] = {}
    for template in result.templates():
        qids = [m.qid for m in static.values() if m.template == template]
        static_total = sum(static[qid].work for qid in qids)
        adaptive_total = sum(adaptive[qid].work for qid in qids)
        changed_qids = [qid for qid in qids if adaptive[qid].order_changed]
        changed_static = sum(static[qid].work for qid in changed_qids)
        changed_adaptive = sum(adaptive[qid].work for qid in changed_qids)
        ratios[template] = (
            adaptive_total / max(static_total, 1e-12),
            changed_adaptive / max(changed_static, 1e-12),
            len(changed_qids),
        )
    return TemplateRatioResult(mode=mode.value, ratios=ratios)


# ---------------------------------------------------------------------------
# E6 — Sec 5.4: monitoring/checking overhead on unchanged queries
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class OverheadResult:
    inner_overhead: float     # relative, e.g. 0.0068 = 0.68%
    driving_overhead: float
    unchanged_inner: int
    unchanged_driving: int
    check_frequency: int

    def report(self) -> str:
        return "\n".join(
            [
                f"Sec 5.4 overhead (check frequency c={self.check_frequency})",
                f"  inner-leg monitoring+checking:   "
                f"{self.inner_overhead * 100:.2f}% "
                f"(over {self.unchanged_inner} unchanged queries; paper: 0.68%)",
                f"  driving-leg monitoring+checking: "
                f"{self.driving_overhead * 100:.2f}% "
                f"(over {self.unchanged_driving} unchanged queries; paper: 0.67%)",
            ]
        )


def overhead_experiment(
    db: Database,
    workload: Sequence[WorkloadQuery],
    check_frequency: int = 10,
) -> OverheadResult:
    """Average relative overhead on queries whose order never changed."""
    configs = {
        "static": AdaptiveConfig(mode=ReorderMode.NONE),
        "inner-only": AdaptiveConfig(
            mode=ReorderMode.INNER_ONLY, check_frequency=check_frequency
        ),
        "driving-only": AdaptiveConfig(
            mode=ReorderMode.DRIVING_ONLY, check_frequency=check_frequency
        ),
    }
    result = run_workload(db, workload, configs)
    static = result.by_mode("static")

    def overhead_for(mode: str) -> tuple[float, int]:
        overheads = []
        for qid, measurement in result.by_mode(mode).items():
            if measurement.order_changed:
                continue
            base = static[qid].work
            if base <= 0:
                continue
            overheads.append((measurement.work - base) / base)
        if not overheads:
            return 0.0, 0
        return sum(overheads) / len(overheads), len(overheads)

    inner, n_inner = overhead_for("inner-only")
    driving, n_driving = overhead_for("driving-only")
    return OverheadResult(
        inner_overhead=inner,
        driving_overhead=driving,
        unchanged_inner=n_inner,
        unchanged_driving=n_driving,
        check_frequency=check_frequency,
    )


# ---------------------------------------------------------------------------
# E7 — Fig 10: number of order switches vs history window size
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class WindowSweepResult:
    # window -> (average switches per query, average work per query)
    series: dict[int, tuple[float, float]]

    def report(self) -> str:
        rows = [
            (window, f"{switches:.2f}", f"{work:,.0f}")
            for window, (switches, work) in sorted(self.series.items())
        ]
        return format_table(
            ["history window w", "avg switches/query", "avg work/query"],
            rows,
            title="Fig 10 — order switches vs history window size",
        )


def window_sweep_experiment(
    db: Database,
    workload: Sequence[WorkloadQuery],
    windows: Iterable[int] = (10, 50, 100, 200, 500, 800, 1000, 1200),
) -> WindowSweepResult:
    series: dict[int, tuple[float, float]] = {}
    for window in windows:
        config = AdaptiveConfig(
            mode=ReorderMode.BOTH,
            history_window=window,
        )
        result = run_workload(
            db, workload, {"both": config}, verify_against=None
        )
        # Totals come straight off the run's metrics registry.
        metrics = result.metrics
        count = max(metrics.counter("bench_queries_total").value("both"), 1.0)
        avg_switches = metrics.counter("bench_switches_total").value("both") / count
        avg_work = metrics.counter("bench_work_units_total").value("both") / count
        series[window] = (avg_switches, avg_work)
    return WindowSweepResult(series=series)


# ---------------------------------------------------------------------------
# Ablations (DESIGN.md Sec 6)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AblationResult:
    # variant label -> (total work, total switches)
    series: dict[str, tuple[float, int]]
    baseline: str

    def report(self, title: str) -> str:
        base_work = self.series[self.baseline][0]
        rows = [
            (
                label,
                f"{work:,.0f}",
                f"{work / max(base_work, 1e-12):.3f}",
                switches,
            )
            for label, (work, switches) in self.series.items()
        ]
        return format_table(
            ["variant", "total work", f"vs {self.baseline}", "switches"],
            rows,
            title=title,
        )


def ablation_experiment(
    db: Database,
    workload: Sequence[WorkloadQuery],
    variants: Mapping[str, AdaptiveConfig],
    baseline: str,
) -> AblationResult:
    """Run the workload under each variant and total the work.

    Result correctness of every variant is verified against *baseline*.
    """
    result = run_workload(db, workload, dict(variants), verify_against=baseline)
    # Totals come straight off the run's metrics registry.
    work = result.metrics.counter("bench_work_units_total")
    switches = result.metrics.counter("bench_switches_total")
    series: dict[str, tuple[float, int]] = {}
    for mode in result.modes():
        series[mode] = (work.value(mode), int(switches.value(mode)))
    return AblationResult(series=series, baseline=baseline)
