"""Tests for the adaptation event log."""

import pytest

from repro import AdaptiveConfig, ReorderMode
from repro.core.events import AdaptationEvent, EventKind

from tests.conftest import build_three_table_db

SKEW_SQL = (
    "SELECT o.name FROM Owner o, Car c, Demo d "
    "WHERE c.ownerid = o.id AND o.id = d.ownerid "
    "AND c.make = 'Rare' AND o.country = 'DE' AND d.salary < 70000"
)


class TestEventRecord:
    def test_benefit_fraction(self):
        event = AdaptationEvent(
            kind=EventKind.DRIVING_SWITCH,
            driving_rows_produced=10,
            old_order=("a", "b"),
            new_order=("b", "a"),
            estimated_current_cost=100.0,
            estimated_new_cost=25.0,
        )
        assert event.estimated_benefit == pytest.approx(0.75)

    def test_describe_mentions_orders(self):
        event = AdaptationEvent(
            kind=EventKind.INNER_REORDER,
            driving_rows_produced=5,
            old_order=("a", "b", "c"),
            new_order=("a", "c", "b"),
            estimated_current_cost=10.0,
            estimated_new_cost=8.0,
            position=1,
        )
        text = event.describe()
        assert "inner-reorder" in text
        assert "a,b,c -> a,c,b" in text

    def test_negative_benefit_reports_zero(self):
        # A decision whose new plan was estimated costlier must report
        # 0.0, not a negative fraction, so downstream percentage
        # formatting and benefit aggregations stay sane.
        event = AdaptationEvent(
            kind=EventKind.INNER_REORDER,
            driving_rows_produced=20,
            old_order=("a", "b", "c"),
            new_order=("a", "c", "b"),
            estimated_current_cost=100.0,
            estimated_new_cost=140.0,
            position=1,
        )
        assert event.estimated_benefit == 0.0
        assert "0% predicted benefit" in event.describe()

    def test_zero_cost_guard(self):
        event = AdaptationEvent(
            kind=EventKind.DRIVING_SWITCH,
            driving_rows_produced=0,
            old_order=("a",),
            new_order=("b",),
            estimated_current_cost=0.0,
            estimated_new_cost=0.0,
        )
        assert event.estimated_benefit == 0.0


class TestEventLog:
    def test_switch_produces_event(self):
        db = build_three_table_db(owners=2000, seed=42)
        result = db.execute(SKEW_SQL, AdaptiveConfig(mode=ReorderMode.BOTH))
        assert result.stats.driving_switches >= 1
        events = result.stats.events
        assert len(events) == result.stats.total_switches
        switch = next(
            e for e in events if e.kind is EventKind.DRIVING_SWITCH
        )
        # The model must have predicted a benefit at least as large as the
        # configured threshold, and the orders must chain consistently.
        assert switch.estimated_benefit >= 0.15
        assert switch.old_order != switch.new_order
        assert switch.driving_rows_produced >= 10  # c=10 before first check

    def test_events_chain_through_history(self):
        db = build_three_table_db(owners=2000, seed=42)
        result = db.execute(SKEW_SQL, AdaptiveConfig(mode=ReorderMode.BOTH))
        history = result.stats.order_history
        for index, event in enumerate(result.stats.events):
            assert event.old_order == history[index]
            assert event.new_order == history[index + 1]

    def test_static_run_has_no_events(self):
        db = build_three_table_db()
        result = db.execute(SKEW_SQL, AdaptiveConfig(mode=ReorderMode.NONE))
        assert result.stats.events == ()
