"""Pipelined NLJN execution with adaptation hooks."""

from repro.executor.access import Binding, ProbeConfig, RuntimeLeg
from repro.executor.pipeline import AdaptationHooks, PipelineExecutor

__all__ = [
    "AdaptationHooks",
    "Binding",
    "PipelineExecutor",
    "ProbeConfig",
    "RuntimeLeg",
]
