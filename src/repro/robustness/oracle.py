"""Debug-mode invariant oracles: machine-checkable adaptation safety.

The paper's two correctness claims are structural:

* inner-leg permutation fires only in a *depleted state* — every leg at a
  position >= the permutation point has exhausted its match iterator
  (Sec 4.1, Fig 2);
* driving-leg switches never duplicate or drop output rows, because frozen
  scan positions plus positional predicates partition each table's rows
  between "already joined" and "still to come" (Sec 4.2, Fig 3).

An :class:`InvariantOracle` attached to a
:class:`~repro.executor.pipeline.PipelineExecutor` turns both claims into
runtime assertions. The executor shadows its control state into the
oracle: it maintains ``depleted_from`` (the smallest position whose suffix
is currently depleted) and, in oracle mode, tracks the RID of every bound
row so each emitted result is identified by its **RID tuple** — the
(alias, rid) pairs of the joined rows, invariant under any reordering.
A repeated RID tuple is a duplicate by construction and raises
:class:`~repro.errors.OracleViolation` at the emit site; comparing two
executions' RID-tuple multisets (:meth:`diff_against`) additionally
catches *missing* rows, which no single execution can see on its own.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Sequence

from repro.errors import OracleViolation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.executor.pipeline import PipelineExecutor

# An emitted row's identity: ((alias, rid), ...) sorted by alias, so the
# signature is stable across driving switches and inner reorders.
Signature = tuple[tuple[str, int], ...]


class InvariantOracle:
    """Shadow checker for one pipeline execution."""

    def __init__(self) -> None:
        self.signatures: Counter[Signature] = Counter()
        self.emits = 0
        self.inner_reorders_checked = 0
        self.driving_switches_checked = 0

    # ------------------------------------------------------------------
    # Depleted-state preconditions (checked before any mutation applies)
    # ------------------------------------------------------------------
    def check_inner_reorder(
        self, pipeline: "PipelineExecutor", position: int, new_suffix: Sequence[str]
    ) -> None:
        """Assert the Fig 2 precondition for a suffix permutation."""
        self.inner_reorders_checked += 1
        depleted_from = pipeline.depleted_from
        if depleted_from is None or depleted_from > position:
            raise OracleViolation(
                f"inner reorder at position {position} outside a depleted "
                f"state (depleted suffix starts at {depleted_from}); "
                f"proposed suffix {list(new_suffix)}"
            )
        if position < 1:
            raise OracleViolation(
                "inner reorder may not include the driving leg (position 0)"
            )

    def check_driving_switch(self, pipeline: "PipelineExecutor") -> None:
        """Assert the Fig 3 precondition: the whole pipeline is depleted."""
        self.driving_switches_checked += 1
        if pipeline.depleted_from != 0:
            raise OracleViolation(
                "driving switch attempted while the pipeline is not fully "
                f"depleted (depleted suffix starts at {pipeline.depleted_from})"
            )

    # ------------------------------------------------------------------
    # Output-row identity tracking
    # ------------------------------------------------------------------
    def record_emit(self, rid_binding: dict[str, int]) -> None:
        """Record one emitted row; raise on a duplicate RID tuple."""
        signature: Signature = tuple(sorted(rid_binding.items()))
        self.emits += 1
        self.signatures[signature] += 1
        if self.signatures[signature] > 1:
            raise OracleViolation(
                f"duplicate output row {signature!r}: the same RID "
                "combination was emitted twice (driving-switch duplicate "
                "prevention failed)"
            )

    def diff_against(self, reference: "InvariantOracle") -> str | None:
        """Compare RID-tuple multisets; None when identical.

        *reference* is typically a ``ReorderMode.NONE`` execution of the
        same plan. Rows present here but not in the reference are
        duplicates/phantoms; rows only in the reference are missing.
        """
        extra = self.signatures - reference.signatures
        missing = reference.signatures - self.signatures
        if not extra and not missing:
            return None
        parts = []
        if extra:
            parts.append(f"{sum(extra.values())} unexpected row(s)")
        if missing:
            parts.append(f"{sum(missing.values())} missing row(s)")
        samples = list(extra) + list(missing)
        return ", ".join(parts) + f"; e.g. {samples[0]!r}"
