"""Fair round-robin scheduling of admitted queries across sessions.

Each session owns a FIFO of admitted queries; the scheduler keeps a ring
of sessions with pending work and hands out one query per session per
turn. A client that pipelines 50 queries therefore waits behind every
other session's next query, not just its own — per-session throughput
degrades gracefully with client count instead of first-come-first-served
letting one chatty client monopolize the worker slots.

Single event loop, no locks: an :class:`asyncio.Condition` wakes worker
slots when work arrives or the scheduler stops.
"""

from __future__ import annotations

import asyncio
from collections import deque

from repro.server.session import PendingQuery, Session


class FairScheduler:
    """Round-robin dispatcher over per-session FIFOs."""

    def __init__(self) -> None:
        self._ring: deque[Session] = deque()
        self._in_ring: set[int] = set()
        self._condition = asyncio.Condition()
        self._stopped = False

    @property
    def pending(self) -> int:
        return sum(len(session.queue) for session in self._ring)

    async def enqueue(self, pending: PendingQuery) -> None:
        """Append to the query's session FIFO and wake one worker."""
        session = pending.session
        async with self._condition:
            session.queue.append(pending)
            if session.session_id not in self._in_ring:
                self._ring.append(session)
                self._in_ring.add(session.session_id)
            self._condition.notify()

    async def next(self) -> PendingQuery | None:
        """The next query in round-robin order; None once stopped and empty.

        Sessions that disconnected while queued are skipped silently —
        their FIFOs were already cleared by ``Session.disconnect()``.
        """
        async with self._condition:
            while True:
                while self._ring:
                    session = self._ring.popleft()
                    if session.closed or not session.queue:
                        self._in_ring.discard(session.session_id)
                        continue
                    pending = session.queue.popleft()
                    if session.queue:
                        self._ring.append(session)  # keep its ring turn
                    else:
                        self._in_ring.discard(session.session_id)
                    return pending
                if self._stopped:
                    return None
                await self._condition.wait()

    async def remove_session(self, session: Session) -> int:
        """Drop a disconnected session's queued work; returns count dropped."""
        async with self._condition:
            dropped = len(session.queue)
            session.queue.clear()
            if session.session_id in self._in_ring:
                try:
                    self._ring.remove(session)
                except ValueError:  # pragma: no cover - defensive
                    pass
                self._in_ring.discard(session.session_id)
            return dropped

    async def stop(self) -> None:
        """Wake every waiting worker so it can observe shutdown."""
        async with self._condition:
            self._stopped = True
            self._condition.notify_all()
