"""Unit tests for repro.catalog.statistics."""

from repro.catalog.statistics import (
    StatisticsLevel,
    collect_column_stats,
    collect_table_stats,
)
from repro.storage.schema import Column, TableSchema
from repro.storage.table import HeapTable
from repro.storage.types import ColumnType


class TestColumnStats:
    def test_basic_counts(self):
        stats = collect_column_stats([1, 2, 2, 3, None])
        assert stats.ndv == 3
        assert stats.null_count == 1
        assert stats.min_value == 1
        assert stats.max_value == 3

    def test_all_null(self):
        stats = collect_column_stats([None, None])
        assert stats.ndv == 0
        assert stats.null_count == 2
        assert stats.min_value is None

    def test_empty(self):
        stats = collect_column_stats([])
        assert stats.ndv == 0

    def test_frequent_values_disabled_by_default(self):
        stats = collect_column_stats([1, 1, 2])
        assert not stats.has_frequent_values

    def test_frequent_values_top_n(self):
        values = [1] * 5 + [2] * 3 + [3]
        stats = collect_column_stats(values, with_frequent_values=True, top_n=2)
        assert stats.frequent_values == {1: 5, 2: 3}

    def test_strings(self):
        stats = collect_column_stats(["b", "a", "a"])
        assert stats.min_value == "a"
        assert stats.max_value == "b"
        assert stats.ndv == 2


class TestTableStats:
    def make_table(self):
        schema = TableSchema(
            "t", [Column("k", ColumnType.INT), Column("v", ColumnType.STRING)]
        )
        table = HeapTable(schema)
        table.insert_many([(1, "a"), (1, "b"), (2, None)])
        return table

    def test_basic_level(self):
        stats = collect_table_stats(self.make_table())
        assert stats.cardinality == 3
        assert stats.column("k").ndv == 2
        assert stats.column("v").null_count == 1

    def test_cardinality_level_has_no_columns(self):
        stats = collect_table_stats(
            self.make_table(), level=StatisticsLevel.CARDINALITY
        )
        assert stats.cardinality == 3
        assert stats.column("k") is None

    def test_detailed_level_has_frequent_values(self):
        stats = collect_table_stats(
            self.make_table(), level=StatisticsLevel.DETAILED
        )
        assert stats.column("k").frequent_values == {1: 2, 2: 1}

    def test_collection_does_not_charge_work(self):
        table = self.make_table()
        before = table.meter.snapshot()
        collect_table_stats(table)
        assert (table.meter - before).total_units == 0.0

    def test_unknown_column_is_none(self):
        stats = collect_table_stats(self.make_table())
        assert stats.column("missing") is None
