"""Adaptive join reordering: the paper's contribution (Sec 4)."""

from repro.core.config import (
    AdaptiveConfig,
    HashProbePolicy,
    InnerReorderPolicy,
    ReorderMode,
)
from repro.core.controller import AdaptationController
from repro.core.driving import decide_driving_switch, dynamic_driving_spec
from repro.core.events import AdaptationEvent, EventKind
from repro.core.monitor import DrivingMonitor, LegMonitor, SlidingWindow
from repro.core.positions import FrozenScan, PositionRegistry
from repro.core.ranks import (
    RuntimeModelBuilder,
    measured_combined_local_selectivity,
    remaining_scan_fraction,
)
from repro.core.reorder import decide_inner_order, suffix_ranks

__all__ = [
    "AdaptationController",
    "AdaptationEvent",
    "EventKind",
    "AdaptiveConfig",
    "DrivingMonitor",
    "FrozenScan",
    "HashProbePolicy",
    "InnerReorderPolicy",
    "LegMonitor",
    "PositionRegistry",
    "ReorderMode",
    "RuntimeModelBuilder",
    "SlidingWindow",
    "decide_driving_switch",
    "decide_inner_order",
    "dynamic_driving_spec",
    "measured_combined_local_selectivity",
    "remaining_scan_fraction",
    "suffix_ranks",
]
