"""Run-time cost parameters: monitored values fed into the Eq (1) model.

:class:`RuntimeModelBuilder` converts the live pipeline state into the
:class:`~repro.optimizer.params.TableModel` records the shared cost model
consumes, implementing the estimation rules of Sec 4.3:

* join-predicate selectivities are refreshed from Eq (7) measurements
  whenever a leg's index-access predicate has window data;
* each inner leg's (JC, PC) come from the monitors (Eq 11 and measured work
  per incoming row) — carried as *correction factors* against the model's
  prediction at the leg's current position, so that re-evaluating the model
  at a *candidate* position applies the Sec 4.3.4 availability adjustment
  automatically;
* the driving leg's S_LPI is the optimizer prior (Sec 4.3.3: a single index
  scan cannot measure it) and its S_LPR is monitored;
* previously-driving legs carry a ``remaining_fraction`` computed from
  index/heap metadata after their frozen position, so candidate plans are
  compared on *remaining* work (Fig 3 steps 2-3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.config import HashProbePolicy
from repro.core.positions import PositionRegistry
from repro.optimizer.params import ModelProvider, TableModel
from repro.storage.cursor import IndexScanCursor, TableScanCursor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.executor.access import RuntimeLeg
    from repro.executor.pipeline import PipelineExecutor

_CORRECTION_FLOOR = 1e-3
_CORRECTION_CEIL = 1e3


def _clamp(value: float, low: float, high: float) -> float:
    return max(min(value, high), low)


def remaining_scan_fraction(
    cursor: TableScanCursor | IndexScanCursor,
) -> float:
    """Fraction of a driving scan's qualifying entries not yet consumed.

    Reads only index/heap metadata (entry counts after the cursor's
    position) — the analogue of a B-tree key-range estimate, never touching
    row data.

    A partition-bounded cursor (``partition_entry_count`` set by the
    parallel partitioner) is measured against its own slice: the fraction is
    computed from entries yielded within the bounds, so each worker's cost
    model reasons about *its* remaining work rather than the whole scan's.
    """
    partition_total = getattr(cursor, "partition_entry_count", None)
    if partition_total is not None:
        if partition_total == 0:
            return 0.0
        remaining = partition_total - cursor.entries_yielded
        return max(remaining, 0) / partition_total
    if isinstance(cursor, TableScanCursor):
        total = len(cursor.table)
        if total == 0:
            return 0.0
        consumed = 0 if cursor.last_position is None else cursor.last_position[0] + 1
        return max(total - consumed, 0) / total
    index = cursor.index
    total = 0
    remaining = 0
    after = cursor.last_position
    for key_range in cursor.ranges:
        total += index.count_range(
            key_range.low,
            key_range.high,
            key_range.low_inclusive,
            key_range.high_inclusive,
        )
        remaining += index.count_range_after(
            after,
            key_range.low,
            key_range.high,
            key_range.low_inclusive,
            key_range.high_inclusive,
        )
    if total == 0:
        return 0.0
    return remaining / total


def measured_combined_local_selectivity(leg: "RuntimeLeg") -> float | None:
    """Combined selectivity of the leg's local conjunction, from monitoring.

    Local predicates are evaluated in sequence during probes, so the counts
    chain: the product of the conditional pass rates equals the pass rate of
    the whole conjunction — correlations included (the Example 2 property).
    """
    if not leg.local_counts:
        return 1.0
    first_evaluated = leg.local_counts[0][0]
    if first_evaluated == 0:
        return None
    last_passed = leg.local_counts[-1][1]
    return last_passed / first_evaluated


def measured_residual_local_selectivity(
    leg: "RuntimeLeg", pushed: object | None
) -> float | None:
    """Monitored selectivity of the locals *excluding* the pushed predicate.

    Probe-time measurements are conditioned on the join population, which
    can differ wildly from the table-wide distribution (e.g. P(model='Golf')
    among Tokyo owners vs. overall). The pushed predicate's table-wide
    selectivity is known exactly from index metadata, so only the residual
    predicates should use the (conditional) monitored pass rates.
    """
    product = 1.0
    saw_data = False
    for slot, (predicate, _) in enumerate(leg.local_tests):
        if predicate is pushed:
            continue
        evaluated, passed = leg.local_counts[slot]
        if evaluated == 0:
            return None
        product *= passed / evaluated
        saw_data = True
    if not saw_data:
        return 1.0
    return product


class RuntimeModelBuilder:
    """Builds a :class:`ModelProvider` snapshot from live pipeline state."""

    def __init__(self, pipeline: "PipelineExecutor") -> None:
        self.pipeline = pipeline
        self.config = pipeline.config

    # ------------------------------------------------------------------
    def refresh_join_selectivities(self) -> None:
        """Fold Eq (7) measurements into the live selectivity table."""
        warmup = self.config.warmup_rows
        for position, alias in enumerate(self.pipeline.order):
            if position == 0:
                continue
            leg = self.pipeline.legs[alias]
            config = leg.probe_config
            if config is None or config.access_predicate is None:
                continue
            if config.hash_column is not None:
                # Hash buckets are pre-filtered by local predicates, so the
                # match rate is sel_jp * sel_locals — not a clean Eq (7)
                # measurement of the join class.
                continue
            if leg.monitor.lifetime_incoming < warmup:
                continue
            measured = leg.monitor.index_join_selectivity(leg.base_cardinality)
            if measured is None or measured <= 0:
                continue
            predicate = config.access_predicate
            class_id = self.pipeline.join_graph.class_id(
                predicate.left, predicate.left_column
            )
            if class_id is not None:
                self.pipeline.class_selectivities[class_id] = measured

    # ------------------------------------------------------------------
    def _remaining_fraction(self, alias: str) -> float:
        pipeline = self.pipeline
        registry: PositionRegistry = pipeline.registry
        if alias == pipeline.order[0] and pipeline.driving_cursor is not None:
            return remaining_scan_fraction(pipeline.driving_cursor)
        frozen = registry.frozen_scan(alias)
        if frozen is not None:
            return remaining_scan_fraction(frozen.cursor)
        return 1.0

    def _index_selectivity(self, alias: str) -> float:
        """S_LPI of *alias*'s driving access path.

        Computed from index metadata (entry counts over the spec's key
        ranges) rather than the optimizer's uniformity guess — the run-time
        equivalent of a B-tree key-range estimate, which every commercial
        engine can produce without touching row data. Falls back to the
        optimizer prior when the index is unavailable.
        """
        leg = self.pipeline.legs[alias]
        cached = getattr(leg, "_slpi_metadata", None)
        if cached is not None:
            return cached
        spec = leg.plan_leg.driving
        value = leg.plan_leg.estimates.sel_local_index
        if spec.index_column is not None and spec.ranges:
            index = leg.indexes.get(spec.index_column)
            if index is not None and leg.base_cardinality > 0:
                qualified = sum(
                    index.count_range(
                        r.low, r.high, r.low_inclusive, r.high_inclusive
                    )
                    for r in spec.ranges
                )
                value = qualified / leg.base_cardinality
        leg._slpi_metadata = value
        return value

    def _local_selectivities(self, alias: str) -> tuple[float, float]:
        """(S_LPI, S_LPR) for *alias*, preferring monitored values."""
        pipeline = self.pipeline
        leg = pipeline.legs[alias]
        estimates = leg.plan_leg.estimates
        sel_index = self._index_selectivity(alias)
        if alias == pipeline.order[0]:
            # Driving leg: S_LPI from index metadata, S_LPR from the scan
            # monitor once warm (Sec 4.3.1/4.3.3).
            monitor = leg.driving_monitor
            measured = monitor.residual_selectivity() if monitor is not None else None
            if (
                measured is not None
                and monitor is not None
                and monitor.entries_scanned >= self.config.warmup_rows
            ):
                return sel_index, measured
            return sel_index, estimates.sel_local_residual
        warm = (
            leg.local_counts
            and leg.local_counts[0][0] >= self.config.warmup_rows
        )
        if not warm:
            return sel_index, estimates.sel_local_residual
        # S_LPI comes from index metadata (table-wide, exact); only the
        # residual predicates use the probe-time (join-conditional)
        # measurements — see measured_residual_local_selectivity.
        residual = measured_residual_local_selectivity(
            leg, leg.pushed_driving_predicate()
        )
        if residual is None:
            return sel_index, estimates.sel_local_residual
        return sel_index, min(residual, 1.0)

    def build_provider(self) -> ModelProvider:
        """Snapshot the pipeline into a calibrated :class:`ModelProvider`.

        Model construction is **lazy**: a leg's :class:`TableModel` (and its
        calibration against the monitors) is built the first time the order
        search touches that leg. A reorder check at a deep pipeline position
        only evaluates the depleted suffix, so most checks build two or
        three models instead of one per leg — the dominant per-check cost
        in the profile. Calibration stays exact: a leg's calibrated
        (JC, PC) at any position is its uncalibrated value times its
        correction factors (``x * 1.0 == x`` and the correction multiplies
        last in ``inner_params``), so the uncalibrated evaluation done
        during calibration seeds the provider's memo with the corrected
        value instead of being recomputed.
        """
        pipeline = self.pipeline
        models = _LazyModels()
        models._builder = self
        models._warmup = self.config.warmup_rows
        models._hash_probes = (
            pipeline.config.hash_probe_policy is not HashProbePolicy.OFF
        )
        models._legs = pipeline.legs
        models._order = pipeline.order
        models._position_of = {
            alias: i for i, alias in enumerate(pipeline.order)
        }
        provider = ModelProvider(
            models, pipeline.class_selectivities, pipeline.join_graph
        )
        models._provider = provider
        return provider


class _LazyModels(dict):
    """Per-alias :class:`TableModel` cache behind a :class:`ModelProvider`.

    Defined at module level (rather than a closure inside
    ``build_provider``) so a reorder check does not pay for rebuilding the
    class object; ``build_provider`` binds the snapshot context onto the
    instance instead.
    """

    _builder: "RuntimeModelBuilder"
    _provider: ModelProvider
    _warmup: int
    _hash_probes: bool

    def __missing__(self, alias: str) -> TableModel:
        builder = self._builder
        leg = self._legs[alias]
        plan_leg = leg.plan_leg
        sel_index, sel_residual = builder._local_selectivities(alias)
        model = TableModel(
            alias=alias,
            base_cardinality=leg.base_cardinality,
            sel_local_index=sel_index,
            sel_local_residual=sel_residual,
            local_predicate_count=len(plan_leg.local_predicates),
            indexed_columns=frozenset(leg.indexes),
            driving_kind=plan_leg.driving.kind,
            driving_range_count=max(len(plan_leg.driving.ranges), 1),
            remaining_fraction=builder._remaining_fraction(alias),
            hash_probes=self._hash_probes,
        )
        position = self._position_of.get(alias, 0)
        if (
            position == 0
            or leg.monitor.lifetime_incoming < self._warmup
        ):
            self[alias] = model
            return model
        jc_measured = leg.monitor.join_cardinality()
        pc_measured = leg.monitor.probe_cost()
        # Evaluate the uncalibrated model at the leg's current
        # position (the model must be visible to inner_params).
        self[alias] = model
        provider = self._provider
        bound = frozenset(self._order[:position])
        jc_model, pc_model = provider.inner_params(alias, bound)
        jc_correction = 1.0
        pc_correction = 1.0
        if jc_measured is not None and jc_model > 0:
            jc_correction = _clamp(
                jc_measured / jc_model,
                _CORRECTION_FLOOR,
                _CORRECTION_CEIL,
            )
        if pc_measured is not None and pc_model > 0:
            pc_correction = _clamp(
                pc_measured / pc_model,
                _CORRECTION_FLOOR,
                _CORRECTION_CEIL,
            )
        if jc_correction == 1.0 and pc_correction == 1.0:
            return model
        calibrated = TableModel(
            alias=model.alias,
            base_cardinality=model.base_cardinality,
            sel_local_index=model.sel_local_index,
            sel_local_residual=model.sel_local_residual,
            local_predicate_count=model.local_predicate_count,
            indexed_columns=model.indexed_columns,
            driving_kind=model.driving_kind,
            driving_range_count=model.driving_range_count,
            remaining_fraction=model.remaining_fraction,
            jc_correction=jc_correction,
            pc_correction=pc_correction,
            hash_probes=model.hash_probes,
        )
        self[alias] = calibrated
        # Replace the uncalibrated memo entry with the corrected
        # value (exact: the correction multiplies last).
        provider._inner_cache[(alias, bound)] = (
            jc_model * jc_correction,
            pc_model * pc_correction,
        )
        return calibrated
