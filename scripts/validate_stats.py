#!/usr/bin/env python3
"""Validate a query-server ``stats`` document against its schema.

Connects to a live server (start one with ``python -m repro serve``),
issues ``{"op": "stats"}``, and checks the response document:

* top-level sections ``server``, ``admission``, ``latency_ms``,
  ``queries``, ``plan_cache``, ``telemetry``, ``storage`` all present,
  each an object with exactly the documented keys; ``per_session`` is a
  list with one counter object per connected session and ``per_table``
  a list with one footprint object per catalog table; ``engines`` maps
  known engine names to per-query served counts (``--expect-engine``
  asserts a specific engine — e.g. ``parallel`` — actually ran);
* types: counters are non-negative numbers, ``draining`` is a bool,
  quantiles are numbers or null;
* invariants: ``in_flight <= max_concurrency``,
  ``queue_depth <= max_queue_depth``, latency quantiles are
  monotonically non-decreasing (p50 <= p95 <= p99) when present,
  plan-cache ``size <= capacity`` (when capacity > 0), the latency
  histogram ``count`` is at least the number of completed queries'
  outcomes recorded, ``storage.total_bytes`` equals the sum of the
  per-table bytes, and ``storage.table_count`` equals the number of
  ``per_table`` entries (each of which names the same backend).

Usage::

    python scripts/validate_stats.py --port 7654
    python scripts/validate_stats.py --file stats.json   # offline check

Exits 0 with a one-line summary on success; exits 1 naming the first
violated rule. Stdlib only — runnable in any CI image.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

SCHEMA = {
    "server": {
        "uptime_s": "number",
        "sessions": "count",
        "draining": "bool",
        "protocol_errors": "count",
    },
    "admission": {
        "in_flight": "count",
        "queue_depth": "count",
        "max_concurrency": "count",
        "max_queue_depth": "count",
        "accepted_total": "count",
        "rejected_overload_total": "count",
        "rejected_rate_limit_total": "count",
        "rejected_draining_total": "count",
        "shed_serial_total": "count",
        "shed_static_total": "count",
    },
    "latency_ms": {
        "count": "count",
        "mean": "number_or_null",
        "p50": "number_or_null",
        "p95": "number_or_null",
        "p99": "number_or_null",
    },
    "queries": {
        "ok_total": "count",
        "budget_exceeded_total": "count",
        "cancelled_total": "count",
        "sql_error_total": "count",
        "internal_error_total": "count",
        "rows_returned_total": "count",
        "dropped_on_disconnect_total": "count",
    },
    "plan_cache": {
        "size": "count",
        "capacity": "count",
        "hits": "count",
        "misses": "count",
        "single_flight_waits": "count",
        "evictions": "count",
        "invalidations": "count",
    },
    "telemetry": {
        "recorded_total": "count",
        "slow_total": "count",
        "slow_queries_total": "count",
        "probe_cache_hits_total": "count",
        "probe_cache_misses_total": "count",
        "store_segments": "count",
    },
    "storage": {
        "backend": "string",
        "total_bytes": "count",
        "table_count": "count",
        "kernel_plan_bytes": "count",
    },
}

#: Engine names the server may report in the ``engines`` section (the
#: per-query ``ExecutionStats.engine`` values).
KNOWN_ENGINES = {
    "scalar",
    "batched",
    "turbo",
    "vector",
    "fast",
    "vector-adaptive",
    "vector-adaptive+fast",
    "parallel",
}

#: Sections whose body is a list of objects (one entry per item).
LIST_SCHEMA = {
    "per_session": {
        "session": "string",
        "submitted": "count",
        "completed": "count",
        "rejected": "count",
        "queued": "count",
        "in_flight": "count",
    },
    "per_table": {
        "table": "string",
        "backend": "string",
        "rows": "count",
        "bytes": "count",
        "kernel_bytes": "count",
    },
}


class ValidationError(Exception):
    pass


def check_type(path: str, value, kind: str) -> None:
    if kind == "bool":
        if not isinstance(value, bool):
            raise ValidationError(f"{path}: expected bool, got {value!r}")
        return
    if kind == "string":
        if not isinstance(value, str) or not value:
            raise ValidationError(
                f"{path}: expected non-empty string, got {value!r}"
            )
        return
    if kind == "number_or_null":
        if value is None:
            return
        kind = "number"
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValidationError(f"{path}: expected number, got {value!r}")
    if kind == "count" and value < 0:
        raise ValidationError(f"{path}: counter is negative ({value})")


def validate(stats: dict) -> list[str]:
    """Raises ValidationError on the first violation; returns notes."""
    if not isinstance(stats, dict):
        raise ValidationError(f"stats document is not an object: {stats!r}")
    extra_sections = set(stats) - set(SCHEMA) - set(LIST_SCHEMA) - {"engines"}
    if extra_sections:
        raise ValidationError(f"unknown sections: {sorted(extra_sections)}")
    engines = stats.get("engines")
    if not isinstance(engines, dict):
        raise ValidationError("missing/invalid section 'engines'")
    for name, value in engines.items():
        if name not in KNOWN_ENGINES:
            raise ValidationError(f"engines: unknown engine {name!r}")
        check_type(f"engines.{name}", value, "count")
    for section, fields in SCHEMA.items():
        body = stats.get(section)
        if not isinstance(body, dict):
            raise ValidationError(f"missing/invalid section {section!r}")
        missing = set(fields) - set(body)
        if missing:
            raise ValidationError(f"{section}: missing keys {sorted(missing)}")
        extra = set(body) - set(fields)
        if extra:
            raise ValidationError(f"{section}: unknown keys {sorted(extra)}")
        for key, kind in fields.items():
            check_type(f"{section}.{key}", body[key], kind)
    for section, fields in LIST_SCHEMA.items():
        body = stats.get(section)
        if not isinstance(body, list):
            raise ValidationError(f"missing/invalid list section {section!r}")
        for index, entry in enumerate(body):
            path = f"{section}[{index}]"
            if not isinstance(entry, dict):
                raise ValidationError(f"{path}: expected object, got {entry!r}")
            missing = set(fields) - set(entry)
            if missing:
                raise ValidationError(f"{path}: missing keys {sorted(missing)}")
            extra = set(entry) - set(fields)
            if extra:
                raise ValidationError(f"{path}: unknown keys {sorted(extra)}")
            for key, kind in fields.items():
                check_type(f"{path}.{key}", entry[key], kind)

    admission = stats["admission"]
    if admission["in_flight"] > admission["max_concurrency"]:
        raise ValidationError(
            "admission.in_flight exceeds max_concurrency "
            f"({admission['in_flight']} > {admission['max_concurrency']})"
        )
    if admission["queue_depth"] > admission["max_queue_depth"]:
        raise ValidationError(
            "admission.queue_depth exceeds max_queue_depth "
            f"({admission['queue_depth']} > {admission['max_queue_depth']})"
        )

    latency = stats["latency_ms"]
    quantiles = [latency["p50"], latency["p95"], latency["p99"]]
    present = [q for q in quantiles if q is not None]
    if len(present) not in (0, 3):
        raise ValidationError("latency quantiles must be all-present or all-null")
    if present and not (present[0] <= present[1] <= present[2]):
        raise ValidationError(
            f"latency quantiles not monotone: p50={present[0]} "
            f"p95={present[1]} p99={present[2]}"
        )
    if latency["count"] == 0 and present:
        raise ValidationError("latency quantiles present with zero count")

    cache = stats["plan_cache"]
    if cache["capacity"] > 0 and cache["size"] > cache["capacity"]:
        raise ValidationError(
            f"plan_cache.size exceeds capacity "
            f"({cache['size']} > {cache['capacity']})"
        )

    queries = stats["queries"]
    outcomes = (
        queries["ok_total"] + queries["budget_exceeded_total"]
        + queries["cancelled_total"] + queries["sql_error_total"]
        + queries["internal_error_total"]
    )
    if latency["count"] < outcomes:
        raise ValidationError(
            f"latency count {latency['count']} < recorded outcomes {outcomes}"
        )
    if len(stats["per_session"]) != stats["server"]["sessions"]:
        raise ValidationError(
            f"per_session has {len(stats['per_session'])} entries but "
            f"server.sessions is {stats['server']['sessions']}"
        )
    telemetry = stats["telemetry"]
    if telemetry["slow_total"] > telemetry["recorded_total"]:
        raise ValidationError(
            "telemetry.slow_total exceeds recorded_total "
            f"({telemetry['slow_total']} > {telemetry['recorded_total']})"
        )
    storage = stats["storage"]
    per_table = stats["per_table"]
    table_bytes = sum(entry["bytes"] for entry in per_table)
    if storage["total_bytes"] != table_bytes:
        raise ValidationError(
            f"storage.total_bytes {storage['total_bytes']} != sum of "
            f"per_table bytes {table_bytes}"
        )
    if storage["table_count"] != len(per_table):
        raise ValidationError(
            f"storage.table_count {storage['table_count']} != "
            f"{len(per_table)} per_table entries"
        )
    for entry in per_table:
        if entry["backend"] != storage["backend"]:
            raise ValidationError(
                f"per_table entry {entry['table']!r} backend "
                f"{entry['backend']!r} != storage.backend "
                f"{storage['backend']!r}"
            )
    if sum(engines.values()) > outcomes:
        raise ValidationError(
            f"engines counters sum to {sum(engines.values())} but only "
            f"{outcomes} outcomes were recorded"
        )
    return [
        f"uptime {stats['server']['uptime_s']}s",
        f"{int(outcomes)} queries",
        f"{int(admission['accepted_total'])} accepted",
        f"cache {int(cache['hits'])}h/{int(cache['misses'])}m",
        f"storage {storage['backend']} {int(storage['total_bytes']):,}B"
        f"/{int(storage['table_count'])} tables",
        "engines "
        + (
            ", ".join(
                f"{name}={int(engines[name])}" for name in sorted(engines)
            )
            or "none"
        ),
    ]


async def fetch_stats(host: str, port: int) -> dict:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(b'{"op": "stats", "id": "validate"}\n')
        await writer.drain()
        line = await reader.readline()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass
    response = json.loads(line)
    if response.get("status") != "ok":
        raise ValidationError(f"stats op failed: {response!r}")
    if response.get("id") != "validate":
        raise ValidationError(f"stats response id mismatch: {response.get('id')!r}")
    return response["stats"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7654)
    parser.add_argument(
        "--file",
        default=None,
        help="validate a saved stats JSON document instead of a live server",
    )
    parser.add_argument(
        "--expect-engine",
        default=None,
        choices=sorted(KNOWN_ENGINES),
        help="additionally require at least one query served by this engine",
    )
    args = parser.parse_args()
    try:
        if args.file:
            with open(args.file, "r", encoding="utf-8") as handle:
                stats = json.load(handle)
        else:
            stats = asyncio.run(fetch_stats(args.host, args.port))
        notes = validate(stats)
        if args.expect_engine is not None:
            served = stats.get("engines", {}).get(args.expect_engine, 0)
            if not served:
                raise ValidationError(
                    f"expected engine {args.expect_engine!r} to have served "
                    f"queries, engines={stats.get('engines')!r}"
                )
    except ValidationError as error:
        print(f"FAIL: {error}", file=sys.stderr)
        return 1
    except (OSError, json.JSONDecodeError, KeyError) as error:
        print(f"FAIL: could not fetch/parse stats: {error!r}", file=sys.stderr)
        return 1
    print("PASS: " + ", ".join(notes))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
